package autodiff

import (
	"fmt"
	"math"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

// backward computes the gradients of one node: it returns dLoss/dInput
// per graph input (nil when an input gets no gradient) and accumulates
// parameter gradients into out.
func backward(n *graph.Node, values map[*graph.Node]*tensor.Tensor, dOut *tensor.Tensor, out *Gradients) ([]*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return values[n.Inputs[i]] }
	self := values[n]

	switch n.Kind {
	case graph.OpConv2D:
		return convBackward(n, in(0), dOut, out)
	case graph.OpDepthwiseConv2D:
		return dwConvBackward(n, in(0), dOut, out)
	case graph.OpDense:
		x := in(0)
		dW := tensor.New(n.WShape...)
		dx := tensor.New(x.Shape...)
		outN, inN := n.WShape[0], n.WShape[1]
		for o := 0; o < outN; o++ {
			g := dOut.Data[o]
			wRow := n.Weights.Data[o*inN : (o+1)*inN]
			dwRow := dW.Data[o*inN : (o+1)*inN]
			for i := 0; i < inN; i++ {
				dwRow[i] += g * x.Data[i]
				dx.Data[i] += g * wRow[i]
			}
		}
		accumulateWeight(out, n, dW)
		if n.BiasLen > 0 {
			accumulateBias(out, n, dOut.Data)
		}
		return []*tensor.Tensor{dx}, nil

	case graph.OpBatchNorm:
		// Inference-mode BN: y = scale*(x-mean) + beta with
		// scale = gamma/sqrt(var+eps); mean/var frozen.
		x := in(0)
		c := n.BNChannels
		plane := x.Shape.NumElems() / c
		dx := tensor.New(x.Shape...)
		dGamma := make([]float32, c)
		dBeta := make([]float32, c)
		for ic := 0; ic < c; ic++ {
			inv := 1 / float32(math.Sqrt(float64(n.BN.Variance[ic]+n.BN.Eps)))
			scale := n.BN.Gamma[ic] * inv
			for i := ic * plane; i < (ic+1)*plane; i++ {
				g := dOut.Data[i]
				dx.Data[i] = g * scale
				dGamma[ic] += g * (x.Data[i] - n.BN.Mean[ic]) * inv
				dBeta[ic] += g
			}
		}
		addF32(out.Gamma, n, dGamma)
		addF32(out.Beta, n, dBeta)
		return []*tensor.Tensor{dx}, nil

	case graph.OpReLU:
		return []*tensor.Tensor{maskGrad(in(0), dOut, func(x float32) float32 {
			if x > 0 {
				return 1
			}
			return 0
		})}, nil
	case graph.OpReLU6:
		return []*tensor.Tensor{maskGrad(in(0), dOut, func(x float32) float32 {
			if x > 0 && x < 6 {
				return 1
			}
			return 0
		})}, nil
	case graph.OpLeakyReLU:
		alpha := n.Attrs.LeakySlope()
		return []*tensor.Tensor{maskGrad(in(0), dOut, func(x float32) float32 {
			if x > 0 {
				return 1
			}
			return alpha
		})}, nil
	case graph.OpSigmoid:
		return []*tensor.Tensor{maskGrad(self, dOut, func(y float32) float32 {
			return y * (1 - y)
		})}, nil
	case graph.OpTanh:
		return []*tensor.Tensor{maskGrad(self, dOut, func(y float32) float32 {
			return 1 - y*y
		})}, nil

	case graph.OpMaxPool2D:
		return []*tensor.Tensor{maxPoolBackward(n, in(0), dOut)}, nil
	case graph.OpAvgPool2D:
		return []*tensor.Tensor{avgPoolBackward(n, in(0), dOut)}, nil
	case graph.OpGlobalAvgPool:
		x := in(0)
		c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
		dx := tensor.New(x.Shape...)
		for ic := 0; ic < c; ic++ {
			g := dOut.Data[ic] / float32(h*w)
			seg := dx.Data[ic*h*w : (ic+1)*h*w]
			for i := range seg {
				seg[i] = g
			}
		}
		return []*tensor.Tensor{dx}, nil

	case graph.OpAdd:
		return []*tensor.Tensor{dOut.Clone(), dOut.Clone()}, nil

	case graph.OpConcat:
		outs := make([]*tensor.Tensor, len(n.Inputs))
		off := 0
		for i, src := range n.Inputs {
			sz := src.OutShape.NumElems()
			d := tensor.New(src.OutShape...)
			copy(d.Data, dOut.Data[off:off+sz])
			outs[i] = d
			off += sz
		}
		return outs, nil

	case graph.OpFlatten:
		x := in(0)
		d := tensor.New(x.Shape...)
		copy(d.Data, dOut.Data)
		return []*tensor.Tensor{d}, nil

	case graph.OpSoftmax:
		// dx_i = y_i (g_i - Σ_j g_j y_j)
		y := self
		var dot float32
		for i := range y.Data {
			dot += dOut.Data[i] * y.Data[i]
		}
		dx := tensor.New(y.Shape...)
		for i := range y.Data {
			dx.Data[i] = y.Data[i] * (dOut.Data[i] - dot)
		}
		return []*tensor.Tensor{dx}, nil

	case graph.OpPad:
		x := in(0)
		p := n.Attrs.Pad
		c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
		dx := tensor.New(x.Shape...)
		ow := w + 2*p
		for ic := 0; ic < c; ic++ {
			for iy := 0; iy < h; iy++ {
				srcOff := (ic*(h+2*p)+iy+p)*ow + p
				copy(dx.Data[(ic*h+iy)*w:(ic*h+iy)*w+w], dOut.Data[srcOff:srcOff+w])
			}
		}
		return []*tensor.Tensor{dx}, nil

	case graph.OpShuffle:
		// Inverse permutation: forward sent channel i to
		// (i%g)*(C/g) + i/g, so route each output-channel gradient back.
		x := in(0)
		g := n.Attrs.GroupCount()
		c := x.Shape[0]
		plane := x.Shape.NumElems() / c
		per := c / g
		dx := tensor.New(x.Shape...)
		for i := 0; i < c; i++ {
			dst := (i%g)*per + i/g
			copy(dx.Data[i*plane:(i+1)*plane], dOut.Data[dst*plane:(dst+1)*plane])
		}
		return []*tensor.Tensor{dx}, nil

	case graph.OpUpsample:
		x := in(0)
		f := n.Attrs.Factor
		c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
		dx := tensor.New(x.Shape...)
		oh, ow := h*f, w*f
		for ic := 0; ic < c; ic++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					dx.Data[(ic*h+oy/f)*w+ox/f] += dOut.Data[(ic*oh+oy)*ow+ox]
				}
			}
		}
		return []*tensor.Tensor{dx}, nil

	default:
		return nil, fmt.Errorf("no backward rule for %v", n.Kind)
	}
}

// convBackward handles standard and grouped 2-D convolutions.
func convBackward(n *graph.Node, x, dOut *tensor.Tensor, out *Gradients) ([]*tensor.Tensor, error) {
	spec := n.Attrs.ConvSpec()
	groups := n.Attrs.GroupCount()
	cin, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	cout := n.WShape[0]
	kh, kw := n.WShape[2], n.WShape[3]
	cinG, coutG := cin/groups, cout/groups
	hout, wout := dOut.Shape[1], dOut.Shape[2]
	padH, padW := spec.Pad, spec.Pad
	if spec.Asym {
		padH, padW = spec.PadH, spec.PadW
	}
	stride := spec.Stride
	if stride <= 0 {
		stride = 1
	}

	dx := tensor.New(x.Shape...)
	dW := tensor.New(n.WShape...)
	var dB []float32
	if n.BiasLen > 0 {
		dB = make([]float32, cout)
	}
	for oc := 0; oc < cout; oc++ {
		gi := oc / coutG // group index
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				g := dOut.Data[(oc*hout+oy)*wout+ox]
				if g == 0 {
					continue
				}
				if dB != nil {
					dB[oc] += g
				}
				for icg := 0; icg < cinG; icg++ {
					ic := gi*cinG + icg
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							wIdx := ((oc*cinG+icg)*kh+ky)*kw + kx
							xIdx := (ic*h+iy)*w + ix
							dx.Data[xIdx] += g * n.Weights.Data[wIdx]
							dW.Data[wIdx] += g * x.Data[xIdx]
						}
					}
				}
			}
		}
	}
	accumulateWeight(out, n, dW)
	if dB != nil {
		accumulateBias(out, n, dB)
	}
	return []*tensor.Tensor{dx}, nil
}

// dwConvBackward handles depthwise convolutions.
func dwConvBackward(n *graph.Node, x, dOut *tensor.Tensor, out *Gradients) ([]*tensor.Tensor, error) {
	spec := n.Attrs.ConvSpec()
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	kh, kw := n.WShape[1], n.WShape[2]
	hout, wout := dOut.Shape[1], dOut.Shape[2]
	stride := spec.Stride
	if stride <= 0 {
		stride = 1
	}
	pad := spec.Pad

	dx := tensor.New(x.Shape...)
	dW := tensor.New(n.WShape...)
	var dB []float32
	if n.BiasLen > 0 {
		dB = make([]float32, c)
	}
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				g := dOut.Data[(ic*hout+oy)*wout+ox]
				if g == 0 {
					continue
				}
				if dB != nil {
					dB[ic] += g
				}
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						wIdx := (ic*kh+ky)*kw + kx
						xIdx := (ic*h+iy)*w + ix
						dx.Data[xIdx] += g * n.Weights.Data[wIdx]
						dW.Data[wIdx] += g * x.Data[xIdx]
					}
				}
			}
		}
	}
	accumulateWeight(out, n, dW)
	if dB != nil {
		accumulateBias(out, n, dB)
	}
	return []*tensor.Tensor{dx}, nil
}

func maxPoolBackward(n *graph.Node, x, dOut *tensor.Tensor) *tensor.Tensor {
	k, stride, pad := n.Attrs.Kernel, n.Attrs.Stride, n.Attrs.Pad
	if stride <= 0 {
		stride = k
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	hout, wout := dOut.Shape[1], dOut.Shape[2]
	dx := tensor.New(x.Shape...)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				// Recompute the argmax and route the gradient there.
				best := float32(-math.MaxFloat32)
				bestIdx := -1
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						if v := x.Data[(ic*h+iy)*w+ix]; v > best {
							best, bestIdx = v, (ic*h+iy)*w+ix
						}
					}
				}
				if bestIdx >= 0 {
					dx.Data[bestIdx] += dOut.Data[(ic*hout+oy)*wout+ox]
				}
			}
		}
	}
	return dx
}

func avgPoolBackward(n *graph.Node, x, dOut *tensor.Tensor) *tensor.Tensor {
	k, stride, pad := n.Attrs.Kernel, n.Attrs.Stride, n.Attrs.Pad
	if stride <= 0 {
		stride = k
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	hout, wout := dOut.Shape[1], dOut.Shape[2]
	dx := tensor.New(x.Shape...)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				// Count in-bounds cells (count_exclude_pad, matching
				// forward).
				count := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*stride + kx - pad
						if ix >= 0 && ix < w {
							count++
						}
					}
				}
				if count == 0 {
					continue
				}
				g := dOut.Data[(ic*hout+oy)*wout+ox] / float32(count)
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						dx.Data[(ic*h+iy)*w+ix] += g
					}
				}
			}
		}
	}
	return dx
}

func maskGrad(ref, dOut *tensor.Tensor, deriv func(float32) float32) *tensor.Tensor {
	dx := tensor.New(ref.Shape...)
	for i, v := range ref.Data {
		dx.Data[i] = dOut.Data[i] * deriv(v)
	}
	return dx
}

func accumulateWeight(out *Gradients, n *graph.Node, dW *tensor.Tensor) {
	if acc, ok := out.Weights[n]; ok {
		for i, v := range dW.Data {
			acc.Data[i] += v
		}
		return
	}
	out.Weights[n] = dW
}

func accumulateBias(out *Gradients, n *graph.Node, dB []float32) {
	if acc, ok := out.Bias[n]; ok {
		for i, v := range dB {
			acc[i] += v
		}
		return
	}
	out.Bias[n] = append([]float32(nil), dB...)
}

func addF32(m map[*graph.Node][]float32, n *graph.Node, d []float32) {
	if acc, ok := m[n]; ok {
		for i, v := range d {
			acc[i] += v
		}
		return
	}
	m[n] = append([]float32(nil), d...)
}
