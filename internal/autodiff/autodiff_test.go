package autodiff_test

import (
	"math"
	"testing"

	"edgebench/internal/autodiff"
	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// loss evaluates a scalar test loss (sum of squared outputs / 2) so that
// dLoss/dOutput = output, giving a convenient seed for checking.
func loss(t *testing.T, g *graph.Graph, input *tensor.Tensor) float64 {
	t.Helper()
	out, err := (&graph.Executor{}).Run(g, input)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range out.Data {
		s += float64(v) * float64(v) / 2
	}
	return s
}

func seedGrad(t *testing.T, g *graph.Graph, input *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := (&graph.Executor{}).Run(g, input)
	if err != nil {
		t.Fatal(err)
	}
	return out.Clone()
}

// checkGrad compares an analytic derivative against central finite
// differences of the test loss.
func checkGrad(t *testing.T, g *graph.Graph, input *tensor.Tensor, analytic float64, bump *float32, name string) {
	t.Helper()
	const eps = 1e-3
	orig := *bump
	*bump = orig + eps
	up := loss(t, g, input)
	*bump = orig - eps
	down := loss(t, g, input)
	*bump = orig
	numeric := (up - down) / (2 * eps)
	tol := 1e-2*math.Max(math.Abs(numeric), math.Abs(analytic)) + 2e-3
	if math.Abs(numeric-analytic) > tol {
		t.Errorf("%s: analytic %.6f vs numeric %.6f", name, analytic, numeric)
	}
}

// gradCheckNet builds nets exercising each op kind and verifies every
// parameter and input derivative against finite differences.
func gradCheckAll(t *testing.T, g *graph.Graph, input *tensor.Tensor) {
	t.Helper()
	grads, err := autodiff.Backprop(g, input, seedGrad(t, g, input))
	if err != nil {
		t.Fatal(err)
	}
	// Input gradients (sample a few positions).
	for _, i := range []int{0, len(input.Data) / 2, len(input.Data) - 1} {
		checkGrad(t, g, input, float64(grads.Input.Data[i]), &input.Data[i], "input")
	}
	// Parameter gradients (sample positions per node).
	for _, n := range g.Nodes {
		if dW, ok := grads.Weights[n]; ok {
			for _, i := range []int{0, len(dW.Data) / 2, len(dW.Data) - 1} {
				checkGrad(t, g, input, float64(dW.Data[i]), &n.Weights.Data[i], n.Name+".W")
			}
		}
		if dB, ok := grads.Bias[n]; ok {
			checkGrad(t, g, input, float64(dB[0]), &n.Bias[0], n.Name+".b")
		}
		if dG, ok := grads.Gamma[n]; ok {
			checkGrad(t, g, input, float64(dG[0]), &n.BN.Gamma[0], n.Name+".gamma")
			checkGrad(t, g, input, float64(grads.Beta[n][0]), &n.BN.Beta[0], n.Name+".beta")
		}
	}
}

func TestGradConvDenseChain(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 3}, 2, 6, 6)
	b.Conv2D("conv", 3, 3, 1, 1, true)
	b.ReLU("relu")
	b.MaxPool("pool", 2, 2, 0)
	b.Dense("fc", 4, true)
	g := b.Build()
	in := tensor.New(2, 6, 6).Randomize(stats.NewRNG(1), 1)
	gradCheckAll(t, g, in)
}

func TestGradBatchNormAndGAP(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 5}, 2, 5, 5)
	b.Conv2D("conv", 4, 3, 1, 1, false)
	b.BatchNorm("bn")
	b.Tanh("tanh")
	b.GlobalAvgPool("gap")
	g := b.Build()
	in := tensor.New(2, 5, 5).Randomize(stats.NewRNG(2), 1)
	gradCheckAll(t, g, in)
}

func TestGradResidualAndConcat(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 7}, 2, 4, 4)
	trunk := b.Current()
	l := b.Conv2D("l", 2, 3, 1, 1, true)
	r := b.From(trunk).Conv2D("r", 2, 1, 1, 0, true)
	b.Add("add", l, r)
	s := b.Sigmoid("sig")
	b.From(trunk).Conv2D("c2", 3, 1, 1, 0, true)
	cat := b.Concat("cat", s, b.Current())
	b.From(cat).AvgPool("avg", 2, 2, 0)
	b.Flatten("flat")
	g := b.Build()
	in := tensor.New(2, 4, 4).Randomize(stats.NewRNG(3), 1)
	gradCheckAll(t, g, in)
}

func TestGradDepthwiseLeakyUpsamplePad(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 11}, 3, 4, 4)
	b.DepthwiseConv2D("dw", 3, 1, 1, true)
	b.LeakyReLU("leaky", 0.1)
	b.Upsample("up", 2)
	b.Pad("pad", 1)
	b.Conv2D("pw", 2, 1, 1, 0, true)
	g := b.Build()
	in := tensor.New(3, 4, 4).Randomize(stats.NewRNG(4), 1)
	gradCheckAll(t, g, in)
}

func TestGradGroupedConv(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 13}, 4, 4, 4)
	b.Conv2DG("gc", 4, 3, 1, 1, 2, true)
	b.ReLU6("r6")
	g := b.Build()
	in := tensor.New(4, 4, 4).Randomize(stats.NewRNG(5), 1)
	gradCheckAll(t, g, in)
}

func TestGradRectConv(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 17}, 2, 5, 5)
	b.Conv2DRect("rc", 3, 1, 3, 1, 0, 1, true)
	g := b.Build()
	in := tensor.New(2, 5, 5).Randomize(stats.NewRNG(6), 1)
	gradCheckAll(t, g, in)
}

func TestCrossEntropyGradient(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 19}, 2, 4, 4)
	b.Conv2D("conv", 3, 3, 1, 1, true)
	b.ReLU("relu")
	b.Dense("fc", 3, true)
	b.Softmax("prob")
	g := b.Build()
	in := tensor.New(2, 4, 4).Randomize(stats.NewRNG(7), 1)

	const label = 1
	lossVal, grads, err := autodiff.CrossEntropy(g, in, label)
	if err != nil {
		t.Fatal(err)
	}
	if lossVal <= 0 {
		t.Fatalf("loss = %v", lossVal)
	}
	// Finite-difference the CE loss wrt a few conv weights.
	conv := g.Nodes[1]
	ceLoss := func() float64 {
		l, _, err := autodiff.CrossEntropy(g, in, label)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	for _, i := range []int{0, 10, len(conv.Weights.Data) - 1} {
		const eps = 1e-3
		orig := conv.Weights.Data[i]
		conv.Weights.Data[i] = orig + eps
		up := ceLoss()
		conv.Weights.Data[i] = orig - eps
		down := ceLoss()
		conv.Weights.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		analytic := float64(grads.Weights[conv].Data[i])
		if math.Abs(numeric-analytic) > 1e-2*math.Abs(numeric)+2e-3 {
			t.Errorf("CE dW[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 2}, 1, 2, 2)
	b.Dense("fc", 3, true)
	g := b.Build() // no softmax head
	in := tensor.New(1, 2, 2)
	if _, _, err := autodiff.CrossEntropy(g, in, 0); err == nil {
		t.Fatal("missing softmax should error")
	}
	b2 := nn.NewBuilder("g2", nn.Options{Materialize: true, Seed: 2}, 1, 2, 2)
	b2.Dense("fc", 3, true)
	b2.Softmax("p")
	g2 := b2.Build()
	if _, _, err := autodiff.CrossEntropy(g2, in, 9); err == nil {
		t.Fatal("out-of-range label should error")
	}
}

func TestBackpropRejectsLoweredGraphs(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 2}, 1, 4, 4)
	b.Conv2D("c", 2, 3, 1, 1, false)
	b.BatchNorm("bn")
	b.ReLU("r")
	g := b.Build()
	opt := g.Clone()
	graph.FoldBN(opt)
	graph.FuseActivations(opt)
	in := tensor.New(1, 4, 4)
	seed := tensor.New(2, 4, 4)
	if _, err := autodiff.Backprop(opt, in, seed); err == nil {
		t.Fatal("fused graph must be rejected")
	}
	q := g.Clone()
	graph.QuantizeINT8(q)
	if _, err := autodiff.Backprop(q, in, seed); err == nil {
		t.Fatal("quantized graph must be rejected")
	}
	structural := nn.NewBuilder("s", nn.Options{}, 1, 4, 4)
	structural.Conv2D("c", 2, 3, 1, 1, false)
	if _, err := autodiff.Backprop(structural.Build(), in, tensor.New(2, 4, 4)); err == nil {
		t.Fatal("structural graph must be rejected")
	}
}

// TestTrainingLearnsSyntheticTask is the end-to-end training test: a
// small CNN must fit a linearly-separable synthetic image task.
func TestTrainingLearnsSyntheticTask(t *testing.T) {
	b := nn.NewBuilder("tiny", nn.Options{Materialize: true, Seed: 21}, 1, 8, 8)
	b.Conv2D("conv1", 4, 3, 2, 1, true)
	b.ReLU("relu1")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 2, true)
	b.Softmax("prob")
	g := b.Build()

	// Class 0: bright top half; class 1: bright bottom half.
	rng := stats.NewRNG(33)
	var examples []autodiff.Example
	for i := 0; i < 60; i++ {
		in := tensor.New(1, 8, 8)
		label := i % 2
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := 0.1 * rng.Float32()
				if (label == 0 && y < 4) || (label == 1 && y >= 4) {
					v += 1
				}
				in.Set(v, 0, y, x)
			}
		}
		examples = append(examples, autodiff.Example{Input: in, Label: label})
	}

	opt := autodiff.NewSGD(0.05, 0.9)
	first, _, err := autodiff.TrainEpoch(g, opt, examples)
	if err != nil {
		t.Fatal(err)
	}
	var last, acc float64
	for e := 0; e < 14; e++ {
		last, acc, err = autodiff.TrainEpoch(g, opt, examples)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy %.2f after training; task is separable", acc)
	}
}

func TestTrainEpochEmpty(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 2}, 1, 2, 2)
	b.Dense("fc", 2, true)
	b.Softmax("p")
	g := b.Build()
	if _, _, err := autodiff.TrainEpoch(g, autodiff.NewSGD(0.1, 0), nil); err == nil {
		t.Fatal("empty epoch should error")
	}
}
