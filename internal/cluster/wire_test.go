package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func TestFrameRoundTrip(t *testing.T) {
	in := tensor.New(3, 5, 7).Randomize(stats.NewRNG(2), 1)
	frames := []*Frame{
		TensorFrame(42, in),
		ControlFrame(KindCredit, 8, nil),
		ControlFrame(KindError, 3, []byte("stage 1: engine closed")),
		ControlFrame(KindHello, 0, nil),
		ControlFrame(KindEOS, 9, nil),
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %s: %v", f.Kind, err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || got.DType != want.DType {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if !got.Shape.Equal(want.Shape) || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("body mismatch for %s", want.Kind)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream should yield io.EOF, got %v", err)
	}

	back, err := TensorFrame(0, in).Tensor()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if in.Data[i] != back.Data[i] {
			t.Fatal("tensor payload not bit-exact through the codec")
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	enc := func(f *Frame) []byte {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	good := enc(TensorFrame(1, tensor.New(2, 3).Randomize(stats.NewRNG(1), 1)))

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		for _, cut := range []int{headerLen - 1, headerLen + 3, len(good) - 1} {
			_, err := ReadFrame(bytes.NewReader(good[:cut]))
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
			}
		}
	})
	t.Run("crc mismatch", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[headerLen+13] ^= 0x01 // flip one payload bit (2 dims + len field precede it)
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 0xee
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("want ErrMalformedFrame, got %v", err)
		}
	})
	t.Run("oversized payload header", func(t *testing.T) {
		b := append([]byte(nil), good...)
		// payload length field sits after the fixed header + 2 dims
		binary.LittleEndian.PutUint32(b[headerLen+8:], MaxPayload+1)
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("want ErrFrameTooBig, got %v", err)
		}
	})
	t.Run("shape payload disagreement", func(t *testing.T) {
		f := TensorFrame(1, tensor.New(2, 3))
		f.Shape[0] = 4 // claims 4x3 floats, carries 2x3
		b := enc(f)
		if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("want ErrMalformedFrame, got %v", err)
		}
	})
	t.Run("encode rejects oversize", func(t *testing.T) {
		if _, err := AppendFrame(nil, &Frame{Kind: KindTensor, DType: DTypeFP32,
			Shape: make(tensor.Shape, MaxRank+1)}); !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("want ErrFrameTooBig, got %v", err)
		}
	})
}

// FuzzFrameRoundTrip feeds arbitrary bytes into the frame decoder: it
// must never panic or over-allocate, and any frame it accepts must
// re-encode to the exact bytes it was decoded from (the codec is
// canonical).
func FuzzFrameRoundTrip(f *testing.F) {
	seed := func(fr *Frame) {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(TensorFrame(7, tensor.New(2, 4, 4).Randomize(stats.NewRNG(3), 1)))
	seed(ControlFrame(KindCredit, 16, nil))
	seed(ControlFrame(KindConfig, 0, []byte(`{"stage":0}`)))
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x70, 0x42, 0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("re-encode differs from accepted input prefix")
		}
		if fr.Kind == KindTensor {
			if _, err := fr.Tensor(); err != nil {
				t.Fatalf("accepted tensor frame fails to unpack: %v", err)
			}
		}
	})
}
