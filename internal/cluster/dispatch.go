package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"edgebench/internal/exchange"
	"edgebench/internal/graph"
	"edgebench/internal/partition"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

// StageError is the structured failure the dispatcher surfaces when a
// stage process dies or reports an error: which stage, which device it
// was placed on, and what happened. It declares itself Unavailable so
// the HTTP front end maps it to 503 (retry elsewhere) rather than 500.
type StageError struct {
	Stage  int
	Device string
	Err    error
}

// Error renders the stage, placement, and cause.
func (e *StageError) Error() string {
	if e.Device != "" {
		return fmt.Sprintf("cluster: stage %d (%s): %v", e.Stage, e.Device, e.Err)
	}
	return fmt.Sprintf("cluster: stage %d: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause.
func (e *StageError) Unwrap() error { return e.Err }

// Unavailable marks the pipeline as temporarily unservable.
func (e *StageError) Unavailable() bool { return true }

type closedError struct{}

func (closedError) Error() string     { return "cluster: pipeline closed" }
func (closedError) Unavailable() bool { return true }

// ErrPipelineClosed is returned by inference calls after Close. It is
// Unavailable() so the front server answers 503 during teardown.
var ErrPipelineClosed error = closedError{}

// Stage names one worker process slot: where to reach it and which
// simulated device the placement assigned it.
type Stage struct {
	Addr   string
	Device string
}

// Options tunes a pipeline connection.
type Options struct {
	// Credits is the per-hop flow-control window (default
	// DefaultCredits).
	Credits int
	// Replicas sizes each stage's engine pool (default 1).
	Replicas int
	// DialTimeout bounds every control handshake (default 15s).
	DialTimeout time.Duration
	// Logf, when set, receives dispatcher progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Credits <= 0 {
		o.Credits = DefaultCredits
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	return o
}

// BuildStages turns a placement plan into executable stage subgraphs:
// plan boundaries -> cut points -> SplitN -> parameters copied in. g
// must be materialized and built from the plan's model.
func BuildStages(g *graph.Graph, plan *partition.PipelinePlan) ([]*graph.Graph, error) {
	if len(plan.Stages) == 0 {
		return nil, fmt.Errorf("cluster: empty plan")
	}
	if len(plan.Stages) == 1 {
		return []*graph.Graph{g}, nil
	}
	cuts, err := plan.Cuts(g)
	if err != nil {
		return nil, err
	}
	parts, err := partition.SplitN(g, cuts...)
	if err != nil {
		return nil, err
	}
	partition.CopyParams(g, parts...)
	return parts, nil
}

// ctrlConn is the dispatcher's end of one worker control connection.
type ctrlConn struct {
	stage   int
	device  string
	conn    net.Conn
	writeMu sync.Mutex
	reqMu   sync.Mutex // one outstanding stats poll at a time
	statsCh chan StageStats
}

func (c *ctrlConn) write(f *Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.conn, f)
}

// Pipeline is a connected multi-process inference chain. It implements
// server.Engine, so the standard HTTP front end (admission queue,
// micro-batching, deadlines, /metrics) can sit in front of a
// distributed pipeline exactly as it does a local engine. Safe for
// concurrent use.
type Pipeline struct {
	parts  []*graph.Graph
	stages []Stage
	opts   Options

	resultLn    net.Listener
	head        net.Conn
	headMu      sync.Mutex
	headCredits *credits
	result      net.Conn
	resultMu    sync.Mutex

	ctrls []*ctrlConn

	mu      sync.Mutex
	pending map[uint64]chan *tensor.Tensor
	failErr error
	seq     atomic.Uint64

	done       chan struct{}
	once       sync.Once
	closing    atomic.Bool
	resultDone chan struct{} // closed when resultLoop exits (EOS seen)
	wg         sync.WaitGroup

	statsMu   sync.Mutex
	lastStats []StageStats
}

// Connect wires a pipeline across already-running workers: one part per
// stage, configured in reverse order so every stage's downstream is
// ready before the stage dials it, fronted by a fresh result listener.
// On success every stage has loaded, verified, and warmed its subgraph.
func Connect(parts []*graph.Graph, stages []Stage, opts Options) (p *Pipeline, err error) {
	if len(parts) == 0 || len(parts) != len(stages) {
		return nil, fmt.Errorf("cluster: %d parts for %d stages", len(parts), len(stages))
	}
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: result listener: %w", err)
	}
	p = &Pipeline{
		parts:       parts,
		stages:      stages,
		opts:        opts,
		resultLn:    ln,
		headCredits: newCredits(),
		pending:     make(map[uint64]chan *tensor.Tensor),
		done:        make(chan struct{}),
		resultDone:  make(chan struct{}),
		lastStats:   make([]StageStats, len(stages)),
	}
	defer func() {
		if err != nil {
			_ = p.Close()
		}
	}()

	// Configure last stage first: its downstream (the result listener)
	// already exists, and each earlier stage dials a configured peer.
	for i := len(stages) - 1; i >= 0; i-- {
		if err := p.configureStage(i); err != nil {
			return nil, err
		}
	}

	// The last stage dialed us during its configuration; adopt the
	// connection and grant its initial credit window.
	if err := p.acceptResult(); err != nil {
		return nil, err
	}

	// Front of the chain: dial stage 0's data port.
	head, err := net.DialTimeout("tcp", stages[0].Addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial head %s: %w", stages[0].Addr, err)
	}
	p.head = head
	if err := WriteFrame(head, ControlFrame(KindHello, 0, []byte(RoleData))); err != nil {
		return nil, fmt.Errorf("cluster: head hello: %w", err)
	}
	p.wg.Add(1)
	go p.headLoop()
	p.logf("pipeline: %d stages connected, result listener %s", len(stages), ln.Addr())
	return p, nil
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// configureStage dials stage i's control port, ships its subgraph, and
// waits for Ready.
func (p *Pipeline) configureStage(i int) error {
	st := p.stages[i]
	conn, err := net.DialTimeout("tcp", st.Addr, p.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: dial stage %d control %s: %w", i, st.Addr, err)
	}
	c := &ctrlConn{stage: i, device: st.Device, conn: conn, statsCh: make(chan StageStats, 1)}
	p.ctrls = append(p.ctrls, c)
	if err := c.write(ControlFrame(KindHello, uint64(i), []byte(RoleControl))); err != nil {
		return fmt.Errorf("cluster: stage %d control hello: %w", i, err)
	}
	data, err := exchange.Export(p.parts[i], exchange.Options{IncludeWeights: true})
	if err != nil {
		return fmt.Errorf("cluster: export stage %d graph: %w", i, err)
	}
	downstream := p.resultLn.Addr().String()
	if i < len(p.stages)-1 {
		downstream = p.stages[i+1].Addr
	}
	payload, err := json.Marshal(WorkerConfig{
		Stage:      i,
		Device:     st.Device,
		Graph:      data,
		Downstream: downstream,
		Credits:    p.opts.Credits,
		Replicas:   p.opts.Replicas,
	})
	if err != nil {
		return fmt.Errorf("cluster: marshal stage %d config: %w", i, err)
	}
	if err := c.write(ControlFrame(KindConfig, uint64(i), payload)); err != nil {
		return fmt.Errorf("cluster: send stage %d config: %w", i, err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(p.opts.DialTimeout)); err != nil {
		return fmt.Errorf("cluster: stage %d deadline: %w", i, err)
	}
	f, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("cluster: stage %d ready wait: %w", i, err)
	}
	switch f.Kind {
	case KindReady:
	case KindError:
		return &StageError{Stage: i, Device: st.Device, Err: fmt.Errorf("%s", f.Payload)}
	default:
		return fmt.Errorf("cluster: stage %d sent %s instead of ready", i, f.Kind)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return fmt.Errorf("cluster: stage %d deadline clear: %w", i, err)
	}
	p.wg.Add(1)
	go p.monitor(c)
	p.logf("pipeline: stage %d ready at %s (device %s, %d ops)", i, st.Addr, st.Device, p.parts[i].NumOps())
	return nil
}

// acceptResult adopts the last stage's data connection into the result
// slot and grants the initial window.
func (p *Pipeline) acceptResult() error {
	if err := p.resultLn.(*net.TCPListener).SetDeadline(time.Now().Add(p.opts.DialTimeout)); err != nil {
		return err
	}
	conn, err := p.resultLn.Accept()
	if err != nil {
		return fmt.Errorf("cluster: waiting for last stage to connect: %w", err)
	}
	hello, err := ReadFrame(conn)
	if err != nil || hello.Kind != KindHello || string(hello.Payload) != RoleData {
		_ = conn.Close()
		return fmt.Errorf("cluster: result connection bad hello: %v", err)
	}
	if err := WriteFrame(conn, ControlFrame(KindCredit, uint64(p.opts.Credits), nil)); err != nil {
		_ = conn.Close()
		return fmt.Errorf("cluster: result credit grant: %w", err)
	}
	p.result = conn
	p.wg.Add(1)
	go p.resultLoop()
	return nil
}

// fail records the pipeline's terminal error exactly once and wakes
// every waiter.
func (p *Pipeline) fail(err error) {
	p.once.Do(func() {
		p.mu.Lock()
		p.failErr = err
		p.mu.Unlock()
		close(p.done)
	})
}

func (p *Pipeline) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failErr != nil {
		return p.failErr
	}
	return ErrPipelineClosed
}

// headLoop reads stage 0's credit grants (and error reports).
func (p *Pipeline) headLoop() {
	defer p.wg.Done()
	for {
		f, err := ReadFrame(p.head)
		if err != nil {
			if !p.closing.Load() {
				p.fail(&StageError{Stage: 0, Device: p.stages[0].Device,
					Err: fmt.Errorf("data connection lost: %w", err)})
			}
			return
		}
		switch f.Kind {
		case KindCredit:
			p.headCredits.release(f.Seq)
		case KindError:
			p.fail(&StageError{Stage: 0, Device: p.stages[0].Device, Err: fmt.Errorf("%s", f.Payload)})
			return
		default:
			p.fail(&StageError{Stage: 0, Err: fmt.Errorf("unexpected %s frame on head connection", f.Kind)})
			return
		}
	}
}

// resultLoop receives finished tensors from the last stage, completes
// the matching pending request, and returns the frame's credit.
func (p *Pipeline) resultLoop() {
	defer p.wg.Done()
	defer close(p.resultDone)
	last := len(p.stages) - 1
	for {
		f, err := ReadFrame(p.result)
		if err != nil {
			if !p.closing.Load() {
				p.fail(&StageError{Stage: last, Device: p.stages[last].Device,
					Err: fmt.Errorf("result connection lost: %w", err)})
			}
			return
		}
		switch f.Kind {
		case KindTensor:
			out, err := f.Tensor()
			if err != nil {
				p.fail(&StageError{Stage: last, Err: err})
				return
			}
			p.mu.Lock()
			ch := p.pending[f.Seq]
			delete(p.pending, f.Seq)
			p.mu.Unlock()
			if ch != nil {
				ch <- out
			}
			p.resultMu.Lock()
			err = WriteFrame(p.result, ControlFrame(KindCredit, 1, nil))
			p.resultMu.Unlock()
			if err != nil && !p.closing.Load() {
				p.fail(&StageError{Stage: last, Err: fmt.Errorf("result credit: %w", err)})
				return
			}
		case KindEOS:
			return
		default:
			p.fail(&StageError{Stage: last, Err: fmt.Errorf("unexpected %s frame on result connection", f.Kind)})
			return
		}
	}
}

// monitor watches one control connection for stats replies and
// asynchronous stage failures.
func (p *Pipeline) monitor(c *ctrlConn) {
	defer p.wg.Done()
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			if !p.closing.Load() {
				p.fail(&StageError{Stage: c.stage, Device: c.device,
					Err: fmt.Errorf("control connection lost: %w", err)})
			}
			return
		}
		switch f.Kind {
		case KindStats:
			var st StageStats
			if json.Unmarshal(f.Payload, &st) == nil {
				select {
				case c.statsCh <- st:
				default:
				}
			}
		case KindError:
			p.fail(&StageError{Stage: c.stage, Device: c.device, Err: fmt.Errorf("%s", f.Payload)})
			return
		default:
			p.fail(&StageError{Stage: c.stage, Device: c.device,
				Err: fmt.Errorf("unexpected %s frame on control connection", f.Kind)})
			return
		}
	}
}

// Infer pushes one input through the whole chain and waits for its
// output frame. Concurrent Infers keep every stage busy — that overlap
// is the pipeline's throughput story.
func (p *Pipeline) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in == nil {
		return nil, serving.ErrNilInput
	}
	if !in.Shape.Equal(p.InputShape()) {
		return nil, fmt.Errorf("cluster: input shape %v, pipeline wants %v", in.Shape, p.InputShape())
	}
	select {
	case <-p.done:
		return nil, p.err()
	default:
	}
	seq := p.seq.Add(1)
	ch := make(chan *tensor.Tensor, 1)
	p.mu.Lock()
	p.pending[seq] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
	}()
	if !p.headCredits.acquire(p.done) {
		return nil, p.err()
	}
	p.headMu.Lock()
	err := WriteFrame(p.head, TensorFrame(seq, in))
	p.headMu.Unlock()
	if err != nil {
		p.fail(&StageError{Stage: 0, Err: fmt.Errorf("send input: %w", err)})
		return nil, p.err()
	}
	select {
	case out := <-ch:
		return out, nil
	case <-p.done:
		return nil, p.err()
	}
}

// InferBatch satisfies server.Backend: inputs run concurrently through
// the chain (each input is still a single-batch frame — micro-batches
// pipeline across stages rather than fusing into one kernel call).
func (p *Pipeline) InferBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(ins) == 0 {
		return nil, serving.ErrEmptyBatch
	}
	for i, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("cluster: request %d: %w", i, serving.ErrNilInput)
		}
	}
	outs := make([]*tensor.Tensor, len(ins))
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		wg.Add(1)
		go func(i int, in *tensor.Tensor) {
			defer wg.Done()
			outs[i], errs[i] = p.Infer(in)
		}(i, in)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return outs, fmt.Errorf("cluster: request %d: %w", i, err)
		}
	}
	return outs, nil
}

// InputShape is the first stage's input shape.
func (p *Pipeline) InputShape() tensor.Shape { return p.parts[0].Input.OutShape }

// ExecDType labels the dominant execution datatype across all stages.
func (p *Pipeline) ExecDType() string {
	counts := map[string]int{}
	for _, g := range p.parts {
		counts[serving.GraphExecDType(g)] += g.NumOps()
	}
	best, bestCount := "fp32", 0
	for d, c := range counts {
		if c > bestCount {
			best, bestCount = d, c
		}
	}
	return best
}

// WeightBytes sums the parameter footprint across all stages.
func (p *Pipeline) WeightBytes() int64 {
	var total int64
	for _, g := range p.parts {
		for _, n := range g.Nodes {
			total += n.WeightBytes()
		}
	}
	return total
}

// StageStats polls every worker's counters over its control connection.
// Per-stage failures leave that stage's previous snapshot in place, so
// scrape-time metrics degrade gracefully while a stage restarts.
func (p *Pipeline) StageStats() []StageStats {
	out := make([]StageStats, len(p.stages))
	p.statsMu.Lock()
	copy(out, p.lastStats)
	p.statsMu.Unlock()
	for _, c := range p.ctrls {
		st, err := p.pollStage(c)
		if err != nil {
			continue
		}
		out[c.stage] = st
	}
	p.statsMu.Lock()
	copy(p.lastStats, out)
	p.statsMu.Unlock()
	return out
}

func (p *Pipeline) pollStage(c *ctrlConn) (StageStats, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	select {
	case <-c.statsCh: // discard a stale reply from an abandoned poll
	default:
	}
	if err := c.write(ControlFrame(KindStatsReq, 0, nil)); err != nil {
		return StageStats{}, err
	}
	select {
	case st := <-c.statsCh:
		return st, nil
	case <-p.done:
		return StageStats{}, p.err()
	case <-time.After(p.opts.DialTimeout):
		return StageStats{}, fmt.Errorf("cluster: stage %d stats timeout", c.stage)
	}
}

// DispatchCounts aggregates kernel dispatch counters across stages (it
// polls the workers; served from the last snapshot for unreachable
// ones).
func (p *Pipeline) DispatchCounts() (int8Kernels, fp32Kernels, fusedKernels int64) {
	for _, st := range p.StageStats() {
		int8Kernels += st.Int8Kernels
		fp32Kernels += st.FP32Kernels
		fusedKernels += st.FusedKernels
	}
	return int8Kernels, fp32Kernels, fusedKernels
}

// Err reports the pipeline's terminal error, nil while healthy.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failErr
}

// Close shuts the pipeline down: workers are asked to drain (each
// forwards its queue, passes EOS on, and exits), pending requests are
// failed with ErrPipelineClosed, and all connections close. Idempotent.
func (p *Pipeline) Close() error {
	p.closing.Store(true)
	for _, c := range p.ctrls {
		_ = c.write(ControlFrame(KindShutdown, 0, nil))
	}
	p.headMu.Lock()
	if p.head != nil {
		_ = WriteFrame(p.head, ControlFrame(KindEOS, 0, nil))
	}
	p.headMu.Unlock()
	p.fail(ErrPipelineClosed)
	// Give the drain a moment to propagate: every worker forwards its
	// queue and an EOS marker; the result loop exits when the EOS
	// reaches the end of the chain. Only then tear the sockets down, so
	// cleanly draining workers never see a mid-drain connection reset.
	if p.result != nil {
		select {
		case <-p.resultDone:
		case <-time.After(p.opts.DialTimeout):
			p.logf("pipeline: drain timed out, forcing teardown")
		}
	}
	if p.resultLn != nil {
		_ = p.resultLn.Close()
	}
	if p.head != nil {
		_ = p.head.Close()
	}
	if p.result != nil {
		_ = p.result.Close()
	}
	for _, c := range p.ctrls {
		_ = c.conn.Close()
	}
	p.wg.Wait()
	return nil
}
