// Package cluster turns analytic pipeline plans into a running
// multi-process inference pipeline: a framed binary wire protocol for
// streaming activation tensors between stages, a stage worker that
// serves one subgraph over TCP with credit-based backpressure, and a
// dispatcher that places stages, spawns workers, and fronts the chain
// with the HTTP server. This is the execution half of the SEIFER
// direction — internal/partition computes where to cut, cluster makes
// the cut graph actually run across processes.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"edgebench/internal/tensor"
)

// frameMagic opens every frame on the wire ("EBp1": edgebench pipe v1).
const frameMagic uint32 = 0x45427031

// Wire limits. A frame above either bound is rejected before any
// allocation proportional to the attacker-controlled size.
const (
	// MaxRank bounds tensor rank on the wire.
	MaxRank = 8
	// MaxPayload bounds a frame payload (256 MiB — far above any
	// activation tensor in the zoo, far below an allocation bomb).
	MaxPayload = 1 << 28
)

// Kind discriminates frame types on a stage connection.
type Kind uint8

// Frame kinds. Hello opens a connection and declares its role; Config
// ships a serialized stage subgraph; Ready acknowledges it; Tensor
// carries one activation; Credit grants the sender permission for one
// more in-flight tensor; EOS marks a clean end of the tensor stream;
// Error carries a structured stage failure; StatsReq/Stats poll
// per-stage counters; Shutdown asks a worker to drain and exit.
const (
	KindHello Kind = iota + 1
	KindConfig
	KindReady
	KindTensor
	KindCredit
	KindEOS
	KindError
	KindStatsReq
	KindStats
	KindShutdown
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindConfig:
		return "config"
	case KindReady:
		return "ready"
	case KindTensor:
		return "tensor"
	case KindCredit:
		return "credit"
	case KindEOS:
		return "eos"
	case KindError:
		return "error"
	case KindStatsReq:
		return "stats-req"
	case KindStats:
		return "stats"
	case KindShutdown:
		return "shutdown"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func (k Kind) valid() bool { return k >= KindHello && k <= KindShutdown }

// DType tags a frame's payload encoding.
type DType uint8

// Payload encodings: DTypeNone for bare control frames, DTypeFP32 for
// little-endian float32 tensor data (shape in the header), DTypeBytes
// for opaque byte payloads (JSON configs, error strings, stats).
const (
	DTypeNone DType = iota
	DTypeFP32
	DTypeBytes
)

// Typed corruption errors, so receivers can distinguish a broken peer
// from a clean close.
var (
	// ErrBadMagic means the stream is not speaking this protocol (or
	// has desynchronized); the connection must be dropped.
	ErrBadMagic = errors.New("cluster: bad frame magic")
	// ErrChecksum means the frame arrived corrupted.
	ErrChecksum = errors.New("cluster: frame checksum mismatch")
	// ErrFrameTooBig means a header declared a rank or payload above
	// the wire limits.
	ErrFrameTooBig = errors.New("cluster: frame exceeds wire limits")
	// ErrMalformedFrame covers the remaining header-level corruption:
	// unknown kind or dtype, nonzero reserved flags, or a tensor frame
	// whose shape disagrees with its payload length.
	ErrMalformedFrame = errors.New("cluster: malformed frame")
)

// Frame is one protocol message. Tensor frames carry Shape +
// float32-encoded Payload; control frames leave Shape nil and use
// Payload (or just Seq, which doubles as the credit count for
// KindCredit and the stage index for KindHello) as their argument.
type Frame struct {
	Kind    Kind
	DType   DType
	Seq     uint64
	Shape   tensor.Shape
	Payload []byte
}

// fixed header: magic u32 | kind u8 | dtype u8 | rank u8 | flags u8 |
// seq u64 — then rank×u32 dims, u32 payload length, payload bytes, and
// a trailing CRC32 (IEEE) over everything before it.
const headerLen = 16

// EncodedLen returns the exact on-wire size of the frame.
func (f *Frame) EncodedLen() int {
	return headerLen + 4*len(f.Shape) + 4 + len(f.Payload) + 4
}

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. It validates the frame against the wire limits.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if !f.Kind.valid() || f.DType > DTypeBytes {
		return dst, fmt.Errorf("%w: kind=%d dtype=%d", ErrMalformedFrame, f.Kind, f.DType)
	}
	if len(f.Shape) > MaxRank {
		return dst, fmt.Errorf("%w: rank %d > %d", ErrFrameTooBig, len(f.Shape), MaxRank)
	}
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrFrameTooBig, len(f.Payload), MaxPayload)
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, frameMagic)
	dst = append(dst, byte(f.Kind), byte(f.DType), byte(len(f.Shape)), 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	for _, d := range f.Shape {
		if d <= 0 || d > math.MaxUint32 {
			return dst[:start], fmt.Errorf("%w: dimension %d", ErrMalformedFrame, d)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// WriteFrame encodes f and writes it to w in a single Write call, so
// frames interleave safely when multiple goroutines share one locked
// writer.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := AppendFrame(make([]byte, 0, f.EncodedLen()), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame from r. It returns io.EOF
// only on a clean boundary (no bytes read); a frame cut off mid-way
// surfaces io.ErrUnexpectedEOF, and corruption surfaces ErrBadMagic,
// ErrChecksum, ErrFrameTooBig, or ErrMalformedFrame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return nil, ErrBadMagic
	}
	f := &Frame{
		Kind:  Kind(hdr[4]),
		DType: DType(hdr[5]),
		Seq:   binary.LittleEndian.Uint64(hdr[8:16]),
	}
	rank := int(hdr[6])
	if !f.Kind.valid() || f.DType > DTypeBytes || hdr[7] != 0 {
		return nil, fmt.Errorf("%w: kind=%d dtype=%d flags=%d", ErrMalformedFrame, hdr[4], hdr[5], hdr[7])
	}
	if rank > MaxRank {
		return nil, fmt.Errorf("%w: rank %d > %d", ErrFrameTooBig, rank, MaxRank)
	}
	rest := make([]byte, 4*rank+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, unexpectedEOF(err)
	}
	if rank > 0 {
		f.Shape = make(tensor.Shape, rank)
		for i := 0; i < rank; i++ {
			d := binary.LittleEndian.Uint32(rest[4*i:])
			if d == 0 {
				return nil, fmt.Errorf("%w: zero dimension", ErrMalformedFrame)
			}
			f.Shape[i] = int(d)
		}
	}
	plen := binary.LittleEndian.Uint32(rest[4*rank:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d > %d", ErrFrameTooBig, plen, MaxPayload)
	}
	tail := make([]byte, int(plen)+4)
	if _, err := io.ReadFull(r, tail); err != nil {
		return nil, unexpectedEOF(err)
	}
	f.Payload = tail[:plen]
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, rest)
	crc = crc32.Update(crc, crc32.IEEETable, f.Payload)
	if crc != binary.LittleEndian.Uint32(tail[plen:]) {
		return nil, ErrChecksum
	}
	if f.Kind == KindTensor {
		if f.DType != DTypeFP32 || len(f.Shape) == 0 {
			return nil, fmt.Errorf("%w: tensor frame dtype=%d rank=%d", ErrMalformedFrame, f.DType, len(f.Shape))
		}
		if want := f.Shape.NumElems() * 4; want != len(f.Payload) {
			return nil, fmt.Errorf("%w: shape %v wants %d payload bytes, frame has %d",
				ErrMalformedFrame, f.Shape, want, len(f.Payload))
		}
	}
	return f, nil
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// TensorFrame packs t into a KindTensor frame tagged with seq.
func TensorFrame(seq uint64, t *tensor.Tensor) *Frame {
	payload := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(v))
	}
	return &Frame{Kind: KindTensor, DType: DTypeFP32, Seq: seq, Shape: t.Shape.Clone(), Payload: payload}
}

// Tensor unpacks a KindTensor frame's payload. ReadFrame has already
// validated shape/payload agreement for frames off the wire.
func (f *Frame) Tensor() (*tensor.Tensor, error) {
	if f.Kind != KindTensor || f.DType != DTypeFP32 {
		return nil, fmt.Errorf("%w: Tensor() on %s/dtype=%d frame", ErrMalformedFrame, f.Kind, f.DType)
	}
	if want := f.Shape.NumElems() * 4; want != len(f.Payload) || want == 0 {
		return nil, fmt.Errorf("%w: shape %v vs %d payload bytes", ErrMalformedFrame, f.Shape, len(f.Payload))
	}
	data := make([]float32, len(f.Payload)/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(f.Payload[4*i:]))
	}
	return &tensor.Tensor{Shape: f.Shape.Clone(), Data: data}, nil
}

// ControlFrame builds a shapeless frame of the given kind. seq carries
// the kind's argument (credit count, stage index, …); payload may be
// nil.
func ControlFrame(kind Kind, seq uint64, payload []byte) *Frame {
	dt := DTypeNone
	if len(payload) > 0 {
		dt = DTypeBytes
	}
	return &Frame{Kind: kind, DType: dt, Seq: seq, Payload: payload}
}
