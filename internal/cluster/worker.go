package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"edgebench/internal/exchange"
	"edgebench/internal/serving"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// Connection roles, declared by the Hello frame's payload: the
// dispatcher opens one "control" connection per worker (config, stats,
// shutdown) and each hop of the tensor chain is one "data" connection
// (tensors downstream, credits upstream, full duplex).
const (
	RoleControl = "control"
	RoleData    = "data"
)

// DefaultCredits is the per-hop credit window: how many tensor frames a
// receiver lets its upstream keep in flight. Small enough that a slow
// stage throttles the chain quickly, large enough to keep the pipe full
// across stage-latency jitter.
const DefaultCredits = 8

// WorkerConfig is the payload of the Config frame a dispatcher ships to
// a stage worker: the stage subgraph (exchange format, weights
// included), where to send outputs, and the execution knobs.
type WorkerConfig struct {
	// Stage is this worker's position in the chain (0-based).
	Stage int `json:"stage"`
	// Device labels the simulated device this stage was placed on.
	Device string `json:"device,omitempty"`
	// Graph is the stage subgraph in exchange format with weights.
	Graph json.RawMessage `json:"graph"`
	// Downstream is the TCP address outputs go to: the next stage's
	// listener, or the dispatcher's result listener for the last stage.
	Downstream string `json:"downstream"`
	// Credits is the window this worker grants its upstream (default
	// DefaultCredits).
	Credits int `json:"credits,omitempty"`
	// Replicas sizes the stage's serving.Engine replica pool (default 1;
	// the pipeline's parallelism is across stages, not within one).
	Replicas int `json:"replicas,omitempty"`
}

// StageStats is one worker's counter snapshot, shipped as the Stats
// frame payload and aggregated by the dispatcher into /metrics.
type StageStats struct {
	Stage          int     `json:"stage"`
	Device         string  `json:"device,omitempty"`
	FramesIn       uint64  `json:"frames_in"`
	FramesOut      uint64  `json:"frames_out"`
	BytesIn        uint64  `json:"bytes_in"`
	BytesOut       uint64  `json:"bytes_out"`
	CreditStalls   uint64  `json:"credit_stalls"`
	QueueDepth     int     `json:"queue_depth"`
	ComputeSeconds float64 `json:"compute_seconds"`
	// P50Ms/P95Ms are per-frame stage compute latency quantiles.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	// Kernel dispatch counters by path, for the pipeline-wide gauges.
	Int8Kernels  int64 `json:"int8_kernels"`
	FP32Kernels  int64 `json:"fp32_kernels"`
	FusedKernels int64 `json:"fused_kernels"`
}

// credits is a counting semaphore carrying a hop's flow-control window.
type credits struct {
	tokens chan struct{}
	stalls atomic.Uint64
}

func newCredits() *credits {
	// Capacity generously above any sane window so release never blocks
	// even against a misbehaving peer double-granting.
	return &credits{tokens: make(chan struct{}, 4096)}
}

// acquire takes one token, blocking until the peer grants credit or
// done closes. It reports whether a token was obtained and counts a
// stall whenever it had to wait.
func (c *credits) acquire(done <-chan struct{}) bool {
	select {
	case <-c.tokens:
		return true
	default:
	}
	c.stalls.Add(1)
	select {
	case <-c.tokens:
		return true
	case <-done:
		return false
	}
}

// release grants n tokens, dropping any beyond capacity (a protocol
// violation by the peer, not worth blocking over).
func (c *credits) release(n uint64) {
	for i := uint64(0); i < n; i++ {
		select {
		case c.tokens <- struct{}{}:
		default:
			return
		}
	}
}

// inFrame is one tensor waiting for stage compute.
type inFrame struct {
	seq uint64
	in  *tensor.Tensor
}

// Worker is one pipeline stage process: it listens for the dispatcher's
// control connection and the upstream data connection, runs every
// received tensor through its subgraph, and forwards results downstream
// under the next hop's credit window.
type Worker struct {
	ln net.Listener

	// Logf, when set, receives progress lines (cmd/edgepipe wires it to
	// stderr; tests leave it nil).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	cfg      *WorkerConfig
	eng      *serving.Engine
	down     net.Conn
	ctrl     net.Conn
	upstream net.Conn
	ctrlMu   sync.Mutex // serializes frames onto ctrl
	upMu     sync.Mutex // serializes frames onto upstream

	downCredits *credits
	ready       chan struct{} // closed once configured
	inQ         chan inFrame
	eos         chan struct{} // closed when upstream sends EOS
	eosOnce     sync.Once
	draining    atomic.Bool
	eosSent     atomic.Bool

	framesIn, framesOut, bytesIn, bytesOut atomic.Uint64
	computeNs                              atomic.Int64
	latMu                                  sync.Mutex
	latency                                *stats.Digest

	done    chan struct{} // closed on fatal error or shutdown
	once    sync.Once
	exitErr error
	wg      sync.WaitGroup
}

// NewWorker starts listening on addr (host:port, port 0 for ephemeral).
// Run must be called to serve.
func NewWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker listen: %w", err)
	}
	return &Worker{
		ln:      ln,
		ready:   make(chan struct{}),
		eos:     make(chan struct{}),
		done:    make(chan struct{}),
		latency: stats.NewDigest(1024, 1),
	}, nil
}

// Addr returns the worker's listen address (dial this).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// stage returns the configured stage index (-1 before configuration),
// for error messages.
func (w *Worker) stage() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cfg == nil {
		return -1
	}
	return w.cfg.Stage
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// exit records the worker's terminal condition exactly once and wakes
// every goroutine. A non-nil err is also reported to the dispatcher as
// an Error frame on the control connection.
func (w *Worker) exit(err error) {
	w.once.Do(func() {
		w.exitErr = err
		if err != nil {
			w.mu.Lock()
			ctrl, cfg := w.ctrl, w.cfg
			w.mu.Unlock()
			if ctrl != nil {
				stage := 0
				if cfg != nil {
					stage = cfg.Stage
				}
				w.ctrlMu.Lock()
				// Best effort: the control conn may be the thing that died.
				_ = WriteFrame(ctrl, ControlFrame(KindError, uint64(stage), []byte(err.Error())))
				w.ctrlMu.Unlock()
			}
		}
		close(w.done)
	})
}

// Run serves until ctx cancels, the dispatcher sends Shutdown, or a
// fatal error occurs (which is also reported upstream on the control
// connection). It owns the accept and compute loops.
func (w *Worker) Run(ctx context.Context) error {
	w.wg.Add(2)
	go w.acceptLoop(ctx)
	go w.computeLoop(ctx)
	select {
	case <-ctx.Done():
		w.exit(ctx.Err())
	case <-w.done:
	}
	// Unblock every conn reader, then await the goroutines.
	_ = w.ln.Close()
	w.mu.Lock()
	for _, c := range []net.Conn{w.ctrl, w.upstream, w.down} {
		if c != nil {
			_ = c.Close()
		}
	}
	w.mu.Unlock()
	w.wg.Wait()
	if w.eng != nil {
		_ = w.eng.Close()
	}
	return w.exitErr
}

// acceptLoop hands each inbound connection to its role handler. The
// chain topology has exactly one control and one data peer; extra
// connections of a taken role are rejected.
func (w *Worker) acceptLoop(ctx context.Context) {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.done:
			case <-ctx.Done():
			default:
				w.exit(fmt.Errorf("cluster: worker accept: %w", err))
			}
			return
		}
		hello, err := ReadFrame(conn)
		if err != nil || hello.Kind != KindHello {
			w.logf("worker: rejecting connection with bad hello: %v", err)
			_ = conn.Close()
			continue
		}
		switch role := string(hello.Payload); role {
		case RoleControl:
			if !w.adopt(&w.ctrl, conn) {
				_ = conn.Close()
				continue
			}
			// acceptLoop holds its own wg slot until it returns, so Run's
			// Wait cannot observe zero between this Add and the reader
			// starting.
			w.wg.Add(1) // edgelint:ignore wg-add
			go w.controlLoop(ctx, conn)
		case RoleData:
			if !w.adopt(&w.upstream, conn) {
				_ = conn.Close()
				continue
			}
			// Same slot-held argument as the control branch above.
			w.wg.Add(1) // edgelint:ignore wg-add
			go w.upstreamLoop(ctx, conn)
		default:
			w.logf("worker: rejecting connection with unknown role %q", role)
			_ = conn.Close()
		}
	}
}

// adopt installs conn into the slot unless one is already present.
func (w *Worker) adopt(slot *net.Conn, conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if *slot != nil {
		return false
	}
	*slot = conn
	return true
}

// controlLoop services the dispatcher's connection: Config, StatsReq,
// Shutdown.
func (w *Worker) controlLoop(ctx context.Context, conn net.Conn) {
	defer w.wg.Done()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-w.done:
			case <-ctx.Done():
			default:
				// Losing the dispatcher is fatal: nobody can shut us down.
				w.exit(fmt.Errorf("cluster: control connection lost: %w", err))
			}
			return
		}
		switch f.Kind {
		case KindConfig:
			if err := w.configure(f.Payload); err != nil {
				w.exit(err)
				return
			}
			w.ctrlMu.Lock()
			err := WriteFrame(conn, ControlFrame(KindReady, 0, nil))
			w.ctrlMu.Unlock()
			if err != nil {
				w.exit(fmt.Errorf("cluster: ready reply: %w", err))
				return
			}
		case KindStatsReq:
			payload, err := json.Marshal(w.snapshot())
			if err == nil {
				w.ctrlMu.Lock()
				err = WriteFrame(conn, ControlFrame(KindStats, f.Seq, payload))
				w.ctrlMu.Unlock()
			}
			if err != nil {
				w.exit(fmt.Errorf("cluster: stats reply: %w", err))
				return
			}
		case KindShutdown:
			w.drain()
			return
		default:
			w.exit(fmt.Errorf("cluster: unexpected %s frame on control connection", f.Kind))
			return
		}
	}
}

// configure builds the stage: import the subgraph (verify-gated by
// exchange.Import), spin up the engine, warm it, and dial downstream.
func (w *Worker) configure(payload []byte) error {
	var cfg WorkerConfig
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("cluster: bad worker config: %w", err)
	}
	if cfg.Credits <= 0 {
		cfg.Credits = DefaultCredits
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	g, err := exchange.Import(cfg.Graph)
	if err != nil {
		return fmt.Errorf("cluster: stage %d graph rejected: %w", cfg.Stage, err)
	}
	eng, err := serving.NewEngine(g, cfg.Replicas)
	if err != nil {
		return fmt.Errorf("cluster: stage %d engine: %w", cfg.Stage, err)
	}
	if err := eng.Warmup(); err != nil {
		_ = eng.Close()
		return fmt.Errorf("cluster: stage %d warmup: %w", cfg.Stage, err)
	}
	down, err := net.DialTimeout("tcp", cfg.Downstream, 10*time.Second)
	if err != nil {
		_ = eng.Close()
		return fmt.Errorf("cluster: stage %d dial downstream %s: %w", cfg.Stage, cfg.Downstream, err)
	}
	if err := WriteFrame(down, ControlFrame(KindHello, uint64(cfg.Stage), []byte(RoleData))); err != nil {
		_ = eng.Close()
		_ = down.Close()
		return fmt.Errorf("cluster: stage %d downstream hello: %w", cfg.Stage, err)
	}
	w.mu.Lock()
	if w.cfg != nil {
		w.mu.Unlock()
		_ = eng.Close()
		_ = down.Close()
		return errors.New("cluster: worker configured twice")
	}
	w.cfg = &cfg
	w.eng = eng
	w.down = down
	w.downCredits = newCredits()
	w.inQ = make(chan inFrame, cfg.Credits)
	w.mu.Unlock()
	w.wg.Add(1)
	go w.downstreamLoop(down)
	close(w.ready)
	w.logf("worker: stage %d ready (%d ops, downstream %s)", cfg.Stage, g.NumOps(), cfg.Downstream)
	return nil
}

// upstreamLoop receives tensor frames from the previous hop and feeds
// the compute queue, granting the initial credit window first.
func (w *Worker) upstreamLoop(ctx context.Context, conn net.Conn) {
	defer w.wg.Done()
	select {
	case <-w.ready:
	case <-w.done:
		return
	case <-ctx.Done():
		return
	}
	w.upMu.Lock()
	err := WriteFrame(conn, ControlFrame(KindCredit, uint64(w.cfg.Credits), nil))
	w.upMu.Unlock()
	if err != nil {
		w.exit(fmt.Errorf("cluster: initial credit grant: %w", err))
		return
	}
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-w.done:
			case <-ctx.Done():
			default:
				if w.draining.Load() && (errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)) {
					// Upstream closed while we drain: no more frames can
					// arrive, so treat the loss as end-of-stream and let
					// the compute loop flush and exit.
					w.eosOnce.Do(func() { close(w.eos) })
					return
				}
				w.exit(fmt.Errorf("cluster: stage %d upstream connection lost: %w", w.stage(), err))
			}
			return
		}
		switch f.Kind {
		case KindTensor:
			in, err := f.Tensor()
			if err != nil {
				w.exit(err)
				return
			}
			w.framesIn.Add(1)
			w.bytesIn.Add(uint64(f.EncodedLen()))
			select {
			case w.inQ <- inFrame{seq: f.Seq, in: in}:
			case <-w.done:
				return
			}
		case KindEOS:
			w.eosOnce.Do(func() { close(w.eos) })
			return
		default:
			w.exit(fmt.Errorf("cluster: unexpected %s frame on data connection", f.Kind))
			return
		}
	}
}

// downstreamLoop reads the next hop's credit grants (and error reports)
// off the downstream connection.
func (w *Worker) downstreamLoop(conn net.Conn) {
	defer w.wg.Done()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-w.done:
			default:
				// After we forward EOS the downstream peer tears down its
				// side; racing its close against our own exit is the normal
				// cross-process drain, not a failure.
				if w.eosSent.Load() && (errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)) {
					return
				}
				w.exit(fmt.Errorf("cluster: stage %d downstream connection lost: %w", w.stage(), err))
			}
			return
		}
		switch f.Kind {
		case KindCredit:
			w.downCredits.release(f.Seq)
		case KindError:
			w.exit(fmt.Errorf("cluster: downstream stage failed: %s", f.Payload))
			return
		default:
			w.exit(fmt.Errorf("cluster: unexpected %s frame from downstream", f.Kind))
			return
		}
	}
}

// computeLoop is the stage's single in-order execution thread: one
// frame at a time through the engine, forwarded under the downstream
// credit window, then one credit granted back upstream. One frame at a
// time per stage is the pipeline-parallel model — concurrency comes
// from K stages overlapping, not from reordering within a stage.
func (w *Worker) computeLoop(ctx context.Context) {
	defer w.wg.Done()
	select {
	case <-w.ready:
	case <-w.done:
		return
	case <-ctx.Done():
		return
	}
	for {
		var f inFrame
		select {
		case f = <-w.inQ:
		case <-w.eos:
			// Drain whatever arrived before EOS, then pass EOS on. The
			// downstream conn has a single writer (this loop), no lock.
			select {
			case f = <-w.inQ:
			default:
				w.eosSent.Store(true)
				_ = WriteFrame(w.down, ControlFrame(KindEOS, 0, nil))
				w.exit(nil)
				return
			}
		case <-w.done:
			return
		case <-ctx.Done():
			return
		}
		start := time.Now()
		out, err := w.eng.Infer(f.in)
		if err != nil {
			w.exit(fmt.Errorf("cluster: stage %d inference: %w", w.cfg.Stage, err))
			return
		}
		elapsed := time.Since(start)
		w.computeNs.Add(elapsed.Nanoseconds())
		w.latMu.Lock()
		w.latency.Add(elapsed.Seconds() * 1e3)
		w.latMu.Unlock()
		if !w.downCredits.acquire(w.done) {
			return
		}
		of := TensorFrame(f.seq, out)
		if err := WriteFrame(w.down, of); err != nil {
			w.exit(fmt.Errorf("cluster: forward downstream: %w", err))
			return
		}
		w.framesOut.Add(1)
		w.bytesOut.Add(uint64(of.EncodedLen()))
		// The frame's slot is free: grant the upstream one more.
		w.mu.Lock()
		up := w.upstream
		w.mu.Unlock()
		if up != nil {
			w.upMu.Lock()
			err := WriteFrame(up, ControlFrame(KindCredit, 1, nil))
			w.upMu.Unlock()
			if err != nil && !w.draining.Load() {
				w.exit(fmt.Errorf("cluster: credit grant: %w", err))
				return
			}
		}
	}
}

// drain performs graceful shutdown. A stage with a live upstream data
// connection must NOT cut itself loose on Shutdown: the chain drains in
// stream order, so it keeps serving until the upstream EOS (or upstream
// loss, which upstreamLoop converts to end-of-stream while draining)
// reaches it — exiting early here would close sockets its neighbors are
// still using mid-drain. Only a stage with no upstream to wait for
// (never configured, or configured but never connected) ends itself.
func (w *Worker) drain() {
	w.draining.Store(true)
	select {
	case <-w.ready:
		w.mu.Lock()
		up := w.upstream
		w.mu.Unlock()
		if up == nil {
			// No upstream will ever send EOS; drain what we have.
			w.eosOnce.Do(func() { close(w.eos) })
		}
	default:
		w.exit(nil)
	}
}

// snapshot collects the worker's counters.
func (w *Worker) snapshot() StageStats {
	st := StageStats{
		FramesIn:       w.framesIn.Load(),
		FramesOut:      w.framesOut.Load(),
		BytesIn:        w.bytesIn.Load(),
		BytesOut:       w.bytesOut.Load(),
		ComputeSeconds: float64(w.computeNs.Load()) / 1e9,
	}
	w.mu.Lock()
	cfg, eng := w.cfg, w.eng
	w.mu.Unlock()
	if cfg != nil {
		st.Stage = cfg.Stage
		st.Device = cfg.Device
		st.QueueDepth = len(w.inQ)
	}
	if w.downCredits != nil {
		st.CreditStalls = w.downCredits.stalls.Load()
	}
	if eng != nil {
		st.Int8Kernels, st.FP32Kernels, st.FusedKernels = eng.DispatchCounts()
	}
	w.latMu.Lock()
	if w.latency.Count() > 0 {
		st.P50Ms = w.latency.Quantile(0.5)
		st.P95Ms = w.latency.Quantile(0.95)
	}
	w.latMu.Unlock()
	return st
}
