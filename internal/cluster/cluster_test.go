package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"edgebench/internal/cluster"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/partition"
	"edgebench/internal/server"
	"edgebench/internal/tensor"
)

// testModel builds a small materialized CNN with enough cut points for
// a 3-stage split.
func testModel(t *testing.T) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("pipetest", nn.Options{Materialize: true, Seed: 11}, 3, 12, 12)
	b.Conv2D("c1", 8, 3, 1, 1, true)
	b.ReLU("r1")
	b.MaxPool("p1", 2, 2, 0)
	b.Conv2D("c2", 12, 3, 1, 1, true)
	b.ReLU("r2")
	b.Conv2D("c3", 12, 3, 1, 1, true)
	b.ReLU("r3")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

// splitThree cuts g into three consecutive stages with params copied.
func splitThree(t *testing.T, g *graph.Graph) []*graph.Graph {
	t.Helper()
	cuts := partition.CutPoints(g)
	if len(cuts) < 4 {
		t.Fatalf("model admits only %d cuts", len(cuts))
	}
	parts, err := partition.SplitN(g, cuts[len(cuts)/3], cuts[2*len(cuts)/3])
	if err != nil {
		t.Fatal(err)
	}
	partition.CopyParams(g, parts...)
	return parts
}

// worker bundles an in-process stage worker with its lifecycle.
type workerProc struct {
	w      *cluster.Worker
	cancel context.CancelFunc
	errCh  chan error
}

// startWorkers launches n in-process stage workers on ephemeral ports.
func startWorkers(t *testing.T, n int) ([]cluster.Stage, []*workerProc) {
	t.Helper()
	stages := make([]cluster.Stage, n)
	procs := make([]*workerProc, n)
	for i := 0; i < n; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() { errCh <- w.Run(ctx) }()
		stages[i] = cluster.Stage{Addr: w.Addr(), Device: "JetsonNano"}
		procs[i] = &workerProc{w: w, cancel: cancel, errCh: errCh}
		t.Cleanup(cancel)
	}
	return stages, procs
}

func waitExit(t *testing.T, p *workerProc) error {
	t.Helper()
	select {
	case err := <-p.errCh:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit")
		return nil
	}
}

// TestPipelineBitExact is the subsystem's core promise: a 3-stage
// pipeline over TCP produces bit-for-bit the outputs of a single
// in-process executor, sequentially and under concurrent load.
func TestPipelineBitExact(t *testing.T) {
	g := testModel(t)
	// Stage engines pre-pack their subgraph weights at session open, so
	// the single-process reference must run the same pre-packed GEMM
	// lowering to stay bitwise comparable.
	graph.PrepackWeights(g)
	parts := splitThree(t, g)
	stages, procs := startWorkers(t, 3)
	p, err := cluster.Connect(parts, stages, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()

	for seed := int64(0); seed < 4; seed++ {
		in := server.SeededInput(g.Input.OutShape, seed)
		want, err := (&graph.Executor{}).Run(g, in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Infer(in.Clone())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Shape.Equal(want.Shape) {
			t.Fatalf("seed %d: shape %v want %v", seed, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("seed %d: output[%d] = %v, single-process %v",
					seed, i, got.Data[i], want.Data[i])
			}
		}
	}

	// Concurrent batch: all frames in flight at once, outputs must
	// still match their own seeds (no cross-wiring of sequence numbers).
	ins := make([]*tensor.Tensor, 6)
	wants := make([]*tensor.Tensor, len(ins))
	for i := range ins {
		ins[i] = server.SeededInput(g.Input.OutShape, int64(100+i))
		w, err := (&graph.Executor{}).Run(g, ins[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	outs, err := p.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		for j := range wants[i].Data {
			if outs[i].Data[j] != wants[i].Data[j] {
				t.Fatalf("batch item %d diverges at %d", i, j)
			}
		}
	}

	// Per-stage stats must show the traffic.
	sts := p.StageStats()
	if len(sts) != 3 {
		t.Fatalf("got %d stage stats", len(sts))
	}
	for i, st := range sts {
		if st.FramesIn == 0 || st.FramesOut == 0 {
			t.Fatalf("stage %d reports no traffic: %+v", i, st)
		}
		if st.BytesOut == 0 || st.ComputeSeconds <= 0 {
			t.Fatalf("stage %d stats incomplete: %+v", i, st)
		}
		if st.Stage != i {
			t.Fatalf("stage stats out of order: %+v at %d", st, i)
		}
	}
	i8, f32, fused := p.DispatchCounts()
	if f32 == 0 {
		t.Fatalf("pipeline dispatched no fp32 kernels (i8=%d f32=%d fused=%d)", i8, f32, fused)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, proc := range procs {
		if err := waitExit(t, proc); err != nil {
			t.Fatalf("worker %d exited with %v", i, err)
		}
	}
}

// TestPipelinePlanRoundTrip drives the analytic path end to end:
// PipelinePartition places a zoo model, BuildStages splits it, and the
// resulting pipeline matches single-process execution bit for bit.
func TestPipelinePlanRoundTrip(t *testing.T) {
	plan, err := partition.PipelinePartition("CifarNet",
		[]string{"RPi3", "JetsonNano", "JetsonTX2"}, "TFLite", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	g := model.MustGet(plan.Model).Build(nn.Options{Materialize: true, Seed: 21})
	graph.PrepackWeights(g) // match the stage engines' pre-packed lowering
	parts, err := cluster.BuildStages(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("plan built %d stages, want 3", len(parts))
	}
	stages, _ := startWorkers(t, 3)
	p, err := cluster.Connect(parts, stages, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	in := server.SeededInput(g.Input.OutShape, 1)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Infer(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("planned pipeline diverges from single-process run")
		}
	}
}

// TestPipelineKillMiddleStage is the graceful-failure contract: kill
// stage 1 mid-stream; the dispatcher must surface a structured
// StageError (marked Unavailable), in-flight requests must fail rather
// than hang, and the HTTP front end must answer 503.
func TestPipelineKillMiddleStage(t *testing.T) {
	g := testModel(t)
	parts := splitThree(t, g)
	stages, procs := startWorkers(t, 3)
	p, err := cluster.Connect(parts, stages, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = p.Close() }()

	srv := server.New(p, server.Config{MaxBatch: 4, QueueCap: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm traffic through the full chain.
	if _, err := p.Infer(server.SeededInput(g.Input.OutShape, 0)); err != nil {
		t.Fatal(err)
	}

	// Kill the middle stage and keep firing until failure propagates.
	procs[1].cancel()
	if err := waitExit(t, procs[1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed worker exited with %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var inferErr error
	for time.Now().Before(deadline) {
		_, inferErr = p.Infer(server.SeededInput(g.Input.OutShape, 7))
		if inferErr != nil {
			break
		}
	}
	if inferErr == nil {
		t.Fatal("pipeline kept succeeding after its middle stage died")
	}
	var se *cluster.StageError
	if !errors.As(inferErr, &se) {
		t.Fatalf("want *StageError, got %T: %v", inferErr, inferErr)
	}
	if !se.Unavailable() {
		t.Fatal("StageError must mark the pipeline unavailable")
	}
	if se.Stage != 0 && se.Stage != 1 && se.Stage != 2 {
		t.Fatalf("implausible failed stage index %d", se.Stage)
	}
	if p.Err() == nil {
		t.Fatal("pipeline should remember its terminal error")
	}

	// The front server must answer 503, not hang or 500.
	body, err := json.Marshal(server.InferRequest{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("front server returned %d, want 503", resp.StatusCode)
	}
}

// TestPipelineGracefulClose: Close drains workers (they exit nil) and
// later Infers fail fast with ErrPipelineClosed (also Unavailable).
func TestPipelineGracefulClose(t *testing.T) {
	g := testModel(t)
	parts := splitThree(t, g)
	stages, procs := startWorkers(t, 3)
	p, err := cluster.Connect(parts, stages, cluster.Options{Credits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Infer(server.SeededInput(g.Input.OutShape, 5)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, proc := range procs {
		if err := waitExit(t, proc); err != nil {
			t.Fatalf("worker %d exited with %v after graceful close", i, err)
		}
	}
	_, err = p.Infer(server.SeededInput(g.Input.OutShape, 6))
	if !errors.Is(err, cluster.ErrPipelineClosed) {
		t.Fatalf("want ErrPipelineClosed, got %v", err)
	}
	var unavail interface{ Unavailable() bool }
	if !errors.As(err, &unavail) || !unavail.Unavailable() {
		t.Fatal("ErrPipelineClosed must be Unavailable")
	}
	if err := p.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}
