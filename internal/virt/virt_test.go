package virt_test

import (
	"testing"

	"edgebench/internal/virt"
)

func TestSlowdown(t *testing.T) {
	if virt.BareMetal.Slowdown() != 1.0 {
		t.Fatal("bare metal must be overhead-free")
	}
	d := virt.Docker.Slowdown()
	if d <= 1.0 || d-1 > virt.MaxDocumentedOverhead {
		t.Fatalf("docker slowdown %v outside (1, 1+5%%]", d)
	}
}

func TestStrings(t *testing.T) {
	if virt.BareMetal.String() != "bare-metal" || virt.Docker.String() != "docker" {
		t.Fatal("environment names wrong")
	}
}
