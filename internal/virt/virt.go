// Package virt models the execution environments of the paper's
// virtualization study (§VI-D, Fig. 13): bare metal versus Docker. The
// paper's finding — contrary to popular belief — is that containerized
// DNN inference costs almost nothing: the overhead is within 5% on every
// model, because inference is compute-bound and containers add cost only
// on the syscall/namespace path.
package virt

// Environment selects where a workload runs.
type Environment int

const (
	// BareMetal runs directly on the host OS.
	BareMetal Environment = iota
	// Docker runs inside a container (namespace isolation, overlay
	// filesystem, bridged networking).
	Docker
)

func (e Environment) String() string {
	if e == Docker {
		return "docker"
	}
	return "bare-metal"
}

// Slowdown returns the multiplicative runtime overhead of the
// environment for compute-bound DNN inference. Fig. 13 measures
// 0-5% (ResNet-18 +5.0%, ResNet-50 +1.0%, MobileNet-v2 +2.8%,
// Inception-v4 +2.5%, TinyYolo +0.4%); we model the mid-band constant
// since the residual spread is measurement noise.
func (e Environment) Slowdown() float64 {
	if e == Docker {
		return dockerSlowdown
	}
	return 1.0
}

// dockerSlowdown reflects the syscall-translation and isolation tax of
// §VI-D: almost negligible for compute-bound work.
const dockerSlowdown = 1.025

// MaxDocumentedOverhead is the paper's bound: "the overhead is almost
// negligible, within 5%, in all cases".
const MaxDocumentedOverhead = 0.05
