// Command edgepipe serves a model as a distributed pipeline: the model
// splits into K consecutive stages (placement chosen by the
// bottleneck-minimizing pipeline partitioner), each stage runs in its
// own worker process behind a framed TCP protocol with credit-based
// backpressure, and a dispatcher fronts the chain with the standard
// HTTP serving surface — the executable form of the collaborative-edge
// line the paper's §VIII points at.
//
// Two subcommands:
//
//	edgepipe worker [-listen 127.0.0.1:0] [-v]
//	    Run one stage worker. It prints its address, then waits for a
//	    dispatcher to connect, ship a stage subgraph, and stream
//	    tensors. The process exits 0 after a graceful drain.
//
//	edgepipe run -model CifarNet -devices RPi3,JetsonNano,JetsonTX2 [flags]
//	    Plan the split, spawn one local worker per stage (or attach to
//	    -workers addresses), verify bit-exactness against an in-process
//	    single-engine run, and serve HTTP on -addr with per-stage
//	    Prometheus metrics on /metrics.
//
// With -attack the dispatcher drives its own load generator against
// the front server and compares pipeline throughput with a measured
// single-replica baseline; -smoke turns that comparison into an exit
// code (the throughput gate is waived loudly on hosts too small to
// overlap the stages).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"edgebench/internal/cluster"
	"edgebench/internal/graph"
	"edgebench/internal/metrics"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/partition"
	"edgebench/internal/server"
	"edgebench/internal/serving"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "worker":
		os.Exit(runWorker(os.Args[2:]))
	case "run":
		os.Exit(runPipeline(os.Args[2:]))
	default:
		fmt.Fprintf(os.Stderr, "edgepipe: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  edgepipe worker [-listen addr] [-v]
  edgepipe run -model NAME -devices D1,D2,... [-framework FW] [-link ethernet|wifi]
               [-opt O0|O1|O2] [-seed N] [-addr addr] [-workers a1,a2,...]
               [-replicas N] [-credits N] [-check N] [-attack rate,dur[,burst]] [-smoke] [-v]
`)
}

// workerReadyPrefix is the line a worker prints once its listener is
// up; the dispatcher parses the address after it when spawning local
// stage processes.
const workerReadyPrefix = "edgepipe worker listening on "

// runWorker hosts one stage until the dispatcher shuts it down (exit 0
// after a graceful drain) or the process is signalled.
func runWorker(args []string) int {
	fs := flag.NewFlagSet("edgepipe worker", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP address for the stage's control and data connections")
	verbose := fs.Bool("v", false, "log connection, config, and drain events to stderr")
	_ = fs.Parse(args)

	w, err := cluster.NewWorker(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}
	if *verbose {
		w.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	fmt.Println(workerReadyPrefix + w.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "edgepipe: worker:", err)
		return 1
	}
	return 0
}

// runPipeline is the dispatcher: plan, split, connect, verify, serve.
func runPipeline(args []string) int {
	fs := flag.NewFlagSet("edgepipe run", flag.ExitOnError)
	modelName := fs.String("model", "CifarNet", "zoo model to serve")
	devicesCSV := fs.String("devices", "RPi3,JetsonNano,JetsonTX2", "ordered device chain for placement (one stage per device)")
	fwName := fs.String("framework", "TFLite", "framework the placement cost model assumes")
	linkName := fs.String("link", "ethernet", "inter-stage link for the placement cost model: ethernet or wifi")
	optLevel := fs.String("opt", "O0", "graph optimization level before splitting: O0, O1, or O2")
	seed := fs.Int64("seed", 11, "weight materialization seed")
	addr := fs.String("addr", "127.0.0.1:0", "HTTP front-end listen address")
	workersCSV := fs.String("workers", "", "comma-separated addresses of already-running stage workers; empty spawns one local worker process per stage")
	replicas := fs.Int("replicas", 1, "executor replicas per stage worker")
	credits := fs.Int("credits", 0, "per-hop credit window (0 = default)")
	check := fs.Int("check", 4, "verify this many seeded inputs bitwise against a single-process run (0 disables)")
	maxBatch := fs.Int("maxbatch", 4, "front server: max requests per micro-batch")
	maxWait := fs.Duration("maxwait", 2*time.Millisecond, "front server: micro-batch window")
	queueCap := fs.Int("queue", 64, "front server: admission queue capacity")
	attack := fs.String("attack", "", "fire the built-in load generator: rate,duration[,burst] with rate in req/s or 'auto'")
	smoke := fs.Bool("smoke", false, "with -attack: exit nonzero unless the run is clean and (on hosts with enough CPUs) pipeline throughput beats the single-replica baseline")
	verbose := fs.Bool("v", false, "log dispatcher progress to stderr")
	_ = fs.Parse(args)

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}

	var link partition.Link
	switch *linkName {
	case "ethernet":
		link = partition.Ethernet
	case "wifi":
		link = partition.WiFi
	default:
		fmt.Fprintf(os.Stderr, "edgepipe: unknown -link %q (want ethernet or wifi)\n", *linkName)
		return 1
	}
	level, err := opt.ParseLevel(*optLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}
	devices := splitCSV(*devicesCSV)
	if len(devices) < 2 {
		fmt.Fprintln(os.Stderr, "edgepipe: need at least two devices for a pipeline")
		return 1
	}

	// Placement: the analytic cost model picks the bottleneck-minimal
	// cuts for this device chain.
	plan, err := partition.PipelinePartition(*modelName, devices, *fwName, link)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}
	fmt.Printf("%s across %d stages over %s (planned bottleneck %.2f ms, %.2fx single-device throughput):\n",
		plan.Model, len(plan.Stages), link.Name, plan.BottleneckSec*1e3, plan.ThroughputSpeedup())
	for i, st := range plan.Stages {
		fmt.Printf("  stage %d on %-12s %s .. %s (%.2f ms compute, %.0f B out)\n",
			i, st.Device, st.FirstOp, st.LastOp, st.ComputeSec*1e3, st.TransferBytes)
	}

	// Build the executable graph and split it along the plan's cuts.
	g := model.MustGet(plan.Model).Build(nn.Options{Materialize: true, Seed: *seed})
	if level > opt.O0 {
		g.Frozen = false
		orep, err := opt.Optimize(g, level)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgepipe:", err)
			return 1
		}
		fmt.Printf("optimized at %s: %s\n", level, orep)
	}
	parts, err := cluster.BuildStages(g, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}

	// Stage processes: attach to the given workers or spawn our own.
	var stages []cluster.Stage
	var procs []*exec.Cmd
	if *workersCSV != "" {
		for i, a := range splitCSV(*workersCSV) {
			dev := devices[min(i, len(devices)-1)]
			stages = append(stages, cluster.Stage{Addr: a, Device: dev})
		}
	} else {
		stages, procs, err = spawnWorkers(len(parts), devices, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgepipe:", err)
			killAll(procs)
			return 1
		}
	}
	if len(stages) != len(parts) {
		fmt.Fprintf(os.Stderr, "edgepipe: %d workers for %d stages\n", len(stages), len(parts))
		killAll(procs)
		return 1
	}

	p, err := cluster.Connect(parts, stages, cluster.Options{
		Credits:  *credits,
		Replicas: *replicas,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		killAll(procs)
		return 1
	}
	fmt.Printf("pipeline up: %d stages, exec %s, %d weight bytes\n",
		len(stages), p.ExecDType(), p.WeightBytes())

	// Bit-exactness: the distributed pipeline must reproduce a local
	// single-process executor exactly, frame for frame.
	if *check > 0 {
		if err := verifyBitExact(p, g, *check); err != nil {
			fmt.Fprintln(os.Stderr, "edgepipe:", err)
			_ = p.Close()
			killAll(procs)
			return 1
		}
		fmt.Printf("bit-exact: %d seeded frames match the single-process executor\n", *check)
	}

	srv := server.New(p, server.Config{
		MaxBatch: *maxBatch,
		MaxWait:  *maxWait,
		QueueCap: *queueCap,
	})
	wireStageMetrics(srv, p)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		_ = p.Close()
		killAll(procs)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	front := ln.Addr().String()
	fmt.Printf("serving %s on http://%s (front of a %d-stage pipeline)\n\n", plan.Model, front, len(stages))

	code := 0
	if *attack != "" {
		code = runAttack(p, g, "http://"+front, *attack, *seed, *smoke)
	} else {
		waitForSignal()
		fmt.Println("\nshutting down: draining the pipeline...")
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe: shutdown:", err)
		code = 1
	}
	// Server.Close closes the engine — here the pipeline, whose Close
	// drains every stage; spawned workers then exit 0 on their own.
	if err := srv.Close(); err != nil && !errors.Is(err, cluster.ErrPipelineClosed) {
		fmt.Fprintln(os.Stderr, "edgepipe: close:", err)
		code = 1
	}
	for _, cmd := range procs {
		if err := waitOrKill(cmd, 10*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "edgepipe: worker:", err)
			code = 1
		}
	}
	return code
}

// spawnWorkers launches one `edgepipe worker` process per stage on an
// ephemeral port and parses each child's ready line for its address.
func spawnWorkers(n int, devices []string, verbose bool) ([]cluster.Stage, []*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var stages []cluster.Stage
	var procs []*exec.Cmd
	for i := 0; i < n; i++ {
		args := []string{"worker", "-listen", "127.0.0.1:0"}
		if verbose {
			args = append(args, "-v")
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		// Workers get their own process group: a terminal Ctrl-C (or a
		// group-wide signal) must reach only the dispatcher, which then
		// drains the chain in stream order. Signaling the workers
		// directly would drop their sockets mid-drain and surface as
		// spurious stage failures.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return stages, procs, err
		}
		if err := cmd.Start(); err != nil {
			return stages, procs, err
		}
		procs = append(procs, cmd)
		addr, err := readReadyLine(out)
		if err != nil {
			return stages, procs, fmt.Errorf("stage %d worker: %w", i, err)
		}
		stages = append(stages, cluster.Stage{Addr: addr, Device: devices[min(i, len(devices)-1)]})
	}
	return stages, procs, nil
}

// readReadyLine waits (bounded) for a spawned worker's ready line and
// returns the address it announced.
func readReadyLine(out interface{ Read([]byte) (int, error) }) (string, error) {
	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), workerReadyPrefix); ok {
				ch <- lineOrErr{line: a}
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = errors.New("worker exited before announcing its address")
		}
		ch <- lineOrErr{err: err}
	}()
	select {
	case r := <-ch:
		return r.line, r.err
	case <-time.After(15 * time.Second):
		return "", errors.New("timed out waiting for the worker's ready line")
	}
}

// verifyBitExact runs n seeded inputs through the pipeline and through
// a local executor on the same graph and requires identical bits. The
// stage workers' engines pre-pack their subgraph weights at session
// open, so the local reference pre-packs too — same GEMM lowering on
// both sides, or the comparison would diverge in the last float bits.
func verifyBitExact(p *cluster.Pipeline, g *graph.Graph, n int) error {
	graph.PrepackWeights(g)
	ex := &graph.Executor{}
	for s := int64(0); s < int64(n); s++ {
		in := server.SeededInput(g.Input.OutShape, s)
		want, err := ex.Run(g, in)
		if err != nil {
			return fmt.Errorf("local run: %w", err)
		}
		got, err := p.Infer(in.Clone())
		if err != nil {
			return fmt.Errorf("pipeline infer (seed %d): %w", s, err)
		}
		if !got.Shape.Equal(want.Shape) {
			return fmt.Errorf("seed %d: pipeline shape %v, single-process %v", s, got.Shape, want.Shape)
		}
		for i := range want.Data {
			// Exact equality is the contract: the distributed pipeline
			// must be bitwise identical to the local executor, not close.
			if got.Data[i] != want.Data[i] { // edgelint:ignore float-eq
				return fmt.Errorf("seed %d: pipeline output diverges at element %d (%v vs %v)",
					s, i, got.Data[i], want.Data[i])
			}
		}
	}
	return nil
}

// wireStageMetrics registers the per-stage gauge families and refreshes
// them from a StageStats poll at every /metrics scrape.
func wireStageMetrics(srv *server.Server, p *cluster.Pipeline) {
	r := srv.Metrics().Registry
	vecs := map[string]*metrics.GaugeVec{
		"lat_p50":  r.NewGaugeVec("edgepipe_stage_latency_p50_ms", "per-frame stage compute latency, median", "stage"),
		"lat_p95":  r.NewGaugeVec("edgepipe_stage_latency_p95_ms", "per-frame stage compute latency, 95th percentile", "stage"),
		"frames":   r.NewGaugeVec("edgepipe_stage_frames_total", "tensor frames forwarded downstream by the stage", "stage"),
		"bytes_in": r.NewGaugeVec("edgepipe_stage_transfer_bytes_in", "bytes received from upstream", "stage"),
		"bytes":    r.NewGaugeVec("edgepipe_stage_transfer_bytes_out", "bytes forwarded downstream", "stage"),
		"stalls":   r.NewGaugeVec("edgepipe_stage_credit_stalls_total", "times the stage blocked waiting for downstream credits", "stage"),
		"queue":    r.NewGaugeVec("edgepipe_stage_queue_depth", "frames waiting in the stage's input queue", "stage"),
		"compute":  r.NewGaugeVec("edgepipe_stage_compute_seconds_total", "cumulative stage compute time", "stage"),
	}
	srv.OnScrape(func() {
		for _, st := range p.StageStats() {
			label := fmt.Sprintf("%d", st.Stage)
			vecs["lat_p50"].Set(label, st.P50Ms)
			vecs["lat_p95"].Set(label, st.P95Ms)
			vecs["frames"].Set(label, float64(st.FramesOut))
			vecs["bytes_in"].Set(label, float64(st.BytesIn))
			vecs["bytes"].Set(label, float64(st.BytesOut))
			vecs["stalls"].Set(label, float64(st.CreditStalls))
			vecs["queue"].Set(label, float64(st.QueueDepth))
			vecs["compute"].Set(label, st.ComputeSeconds)
		}
	})
}

// runAttack measures a single-replica baseline, fires the load
// generator at the pipeline's front server, and (in smoke mode) turns
// the outcome into an exit code. The throughput gate — pipeline beats
// one replica — needs the stages to actually overlap on distinct CPUs,
// so hosts below 4 CPUs record the comparison but do not enforce it,
// mirroring engbench's scaling-gate waiver.
func runAttack(p *cluster.Pipeline, g *graph.Graph, baseURL, attack string, seed int64, smoke bool) int {
	opts, err := server.ParseAttack(attack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}

	baselineCeil := measureBaseline(g)
	fmt.Printf("single-replica baseline: %.1f req/s ceiling\n", baselineCeil)
	if opts.Rate == 0 { // "auto": push past one replica so overlap shows
		opts.Rate = 1.5 * baselineCeil
	}
	opts.Seed = seed
	fmt.Printf("attack: %.1f req/s for %v in bursts of %d\n", opts.Rate, opts.Duration, opts.Burst)
	rep, err := server.Attack(baseURL, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}
	achieved := float64(rep.OK) / opts.Duration.Seconds()
	fmt.Printf("live:      %s\n", rep)
	fmt.Printf("pipeline throughput %.1f req/s vs single-replica ceiling %.1f req/s (%.2fx)\n",
		achieved, baselineCeil, achieved/baselineCeil)

	raw, _, err := server.ScrapeMetrics(baseURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgepipe:", err)
		return 1
	}
	fmt.Println("\n/metrics excerpt:")
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(line, "edgepipe_stage_") {
			fmt.Println(" ", line)
		}
	}

	if !smoke {
		return 0
	}
	var problems []string
	if rep.Sent == 0 {
		problems = append(problems, "no requests sent")
	}
	if rep.Failed > 0 {
		problems = append(problems, fmt.Sprintf("%d failed requests", rep.Failed))
	}
	if err := p.Err(); err != nil && !errors.Is(err, cluster.ErrPipelineClosed) {
		problems = append(problems, fmt.Sprintf("pipeline error: %v", err))
	}
	if runtime.NumCPU() >= 4 {
		if achieved <= baselineCeil {
			problems = append(problems, fmt.Sprintf(
				"pipeline throughput %.1f req/s does not beat the single-replica ceiling %.1f req/s",
				achieved, baselineCeil))
		}
	} else {
		fmt.Fprintf(os.Stderr, "edgepipe: throughput gate WAIVED: host has %d CPUs; %d stages plus the dispatcher cannot overlap (comparison recorded, not enforced)\n",
			runtime.NumCPU(), len(p.StageStats()))
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "\nedgepipe: smoke FAILED: %s\n", strings.Join(problems, "; "))
		return 1
	}
	fmt.Println("\nsmoke OK: zero failed requests, pipeline healthy")
	return 0
}

// measureBaseline times single-stream inference on a one-replica local
// engine over the same graph and returns its request/second ceiling.
func measureBaseline(g *graph.Graph) float64 {
	eng, err := serving.NewEngine(g, 1)
	if err != nil {
		return 0
	}
	defer func() { _ = eng.Close() }()
	in := server.SeededInput(g.Input.OutShape, 0)
	_, _ = eng.Infer(in) // warm the arena
	const n = 5
	start := time.Now()
	for i := 0; i < n; i++ {
		_, _ = eng.Infer(in)
	}
	single := time.Since(start).Seconds() / n
	if single <= 0 {
		return 0
	}
	return 1 / single
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func killAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}
}

// waitOrKill waits for a spawned worker to exit on its own (the
// graceful path after Pipeline.Close) and kills it past the deadline.
func waitOrKill(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return errors.New("worker did not exit after drain; killed")
	}
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}
