// Command modelzoo prints the Table I model inventory with measured
// FLOP/parameter totals and the Figure 1 compute-intensity ordering.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/harness"
)

func main() {
	sorted := flag.Bool("by-intensity", false, "sort by FLOP/parameter (paper Fig. 1)")
	flag.Parse()

	run := harness.TableI
	if *sorted {
		run = harness.Figure1
	}
	rep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelzoo:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}
