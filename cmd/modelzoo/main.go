// Command modelzoo prints the Table I model inventory with measured
// FLOP/parameter totals and the Figure 1 compute-intensity ordering.
//
// With -analyze it instead runs the static dataflow verifiers over
// every zoo model (Table I plus extensions): the structural rule
// catalog, the quant-domain walk, and — for static graphs — the
// buffer-plan aliasing proof over a freshly computed plan. Any
// Error-severity finding exits nonzero, which is how `make analyze`
// gates the model zoo.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/graph"
	"edgebench/internal/harness"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/verify"
)

func main() {
	sorted := flag.Bool("by-intensity", false, "sort by FLOP/parameter (paper Fig. 1)")
	analyze := flag.Bool("analyze", false, "run the dataflow verifiers over every zoo model; nonzero exit on findings")
	flag.Parse()

	if *analyze {
		os.Exit(runAnalyze(os.Stdout))
	}

	run := harness.TableI
	if *sorted {
		run = harness.Figure1
	}
	rep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelzoo:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}

// runAnalyze checks every registered model (structural build — the
// verifiers reason over shapes, dtypes, and liveness, none of which
// need weight data) and returns the process exit code: 0 only when the
// whole zoo is clean of Error-severity diagnostics.
func runAnalyze(w *os.File) int {
	failed := 0
	for _, s := range model.AllWithExtensions() {
		g := s.Build(nn.Options{})
		diags := verify.CheckAll(g)
		planNote := "dynamic graph, no plan"
		if len(verify.Errors(diags)) == 0 && g.Mode == graph.Static {
			plan, err := graph.PlanBuffers(g)
			if err != nil {
				planNote = "unplannable: " + err.Error()
			} else {
				diags = append(diags, verify.CheckPlan(g, plan)...)
				planNote = fmt.Sprintf("plan proved overlap-free (%d arena slots)", len(plan.Slots))
			}
		}
		errs := verify.Errors(diags)
		if len(errs) > 0 {
			failed++
			fmt.Fprintf(w, "FAIL %-18s %d finding(s)\n", s.Name, len(errs))
			for _, d := range errs {
				fmt.Fprintf(w, "     %s\n", d)
			}
			continue
		}
		fmt.Fprintf(w, "ok   %-18s %3d nodes, %s\n", s.Name, len(g.Nodes), planNote)
	}
	if failed > 0 {
		fmt.Fprintf(w, "analyze: %d model(s) failed dataflow verification\n", failed)
		return 1
	}
	return 0
}
