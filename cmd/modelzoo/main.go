// Command modelzoo prints the Table I model inventory with measured
// FLOP/parameter totals and the Figure 1 compute-intensity ordering.
//
// With -analyze it instead runs the static dataflow verifiers over
// every zoo model (Table I plus extensions): the structural rule
// catalog, the quant-domain walk, and — for static graphs — the
// buffer-plan aliasing proof over a freshly computed plan. Any
// Error-severity finding exits nonzero, which is how `make analyze`
// gates the model zoo.
//
// With -opt O1|O2 it runs the graph compiler over every zoo model at
// the given level and prints the per-model pass report: node and edge
// counts before/after, fixpoint iterations, and per-pass rewrite
// totals. A model whose optimization fails verification exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/graph"
	"edgebench/internal/harness"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/verify"
)

func main() {
	sorted := flag.Bool("by-intensity", false, "sort by FLOP/parameter (paper Fig. 1)")
	analyze := flag.Bool("analyze", false, "run the dataflow verifiers over every zoo model; nonzero exit on findings")
	optLevel := flag.String("opt", "", "optimize every zoo model at this level (O0, O1, O2) and print per-model pass reports")
	flag.Parse()

	if *analyze {
		os.Exit(runAnalyze(os.Stdout))
	}
	if *optLevel != "" {
		level, err := opt.ParseLevel(*optLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelzoo:", err)
			os.Exit(1)
		}
		os.Exit(runOpt(os.Stdout, level))
	}

	run := harness.TableI
	if *sorted {
		run = harness.Figure1
	}
	rep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelzoo:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}

// runAnalyze checks every registered model (structural build — the
// verifiers reason over shapes, dtypes, and liveness, none of which
// need weight data) and returns the process exit code: 0 only when the
// whole zoo is clean of Error-severity diagnostics.
func runAnalyze(w *os.File) int {
	failed := 0
	for _, s := range model.AllWithExtensions() {
		g := s.Build(nn.Options{})
		diags := verify.CheckAll(g)
		planNote := "dynamic graph, no plan"
		if len(verify.Errors(diags)) == 0 && g.Mode == graph.Static {
			plan, err := graph.PlanBuffers(g)
			if err != nil {
				planNote = "unplannable: " + err.Error()
			} else {
				diags = append(diags, verify.CheckPlan(g, plan)...)
				planNote = fmt.Sprintf("plan proved overlap-free (%d arena slots)", len(plan.Slots))
			}
		}
		errs := verify.Errors(diags)
		if len(errs) > 0 {
			failed++
			fmt.Fprintf(w, "FAIL %-18s %d finding(s)\n", s.Name, len(errs))
			for _, d := range errs {
				fmt.Fprintf(w, "     %s\n", d)
			}
			continue
		}
		fmt.Fprintf(w, "ok   %-18s %3d nodes, %s\n", s.Name, len(g.Nodes), planNote)
	}
	if failed > 0 {
		fmt.Fprintf(w, "analyze: %d model(s) failed dataflow verification\n", failed)
		return 1
	}
	return 0
}

// runOpt optimizes every registered model (structural build — pattern
// fusion, identity elimination, and dead-node removal reason over graph
// shape alone; constant folding simply finds nothing to fold without
// weights) and prints one pass report per model. Exit code is nonzero
// when any model fails a pass or its post-pass verification gate.
func runOpt(w *os.File, level opt.Level) int {
	failed := 0
	for _, s := range model.AllWithExtensions() {
		g := s.Build(nn.Options{})
		before := len(g.Nodes)
		rep, err := opt.Optimize(g, level)
		if err != nil {
			failed++
			fmt.Fprintf(w, "FAIL %-18s %s\n", s.Name, err)
			continue
		}
		fmt.Fprintf(w, "ok   %-18s %3d -> %3d nodes", s.Name, before, len(g.Nodes))
		for _, st := range rep.Stats {
			if st.Rewrites > 0 {
				fmt.Fprintf(w, "  %s:%d", st.Pass, st.Rewrites)
			}
		}
		fmt.Fprintln(w)
	}
	if failed > 0 {
		fmt.Fprintf(w, "opt: %d model(s) failed optimization at %s\n", failed, level)
		return 1
	}
	return 0
}
