// Command edgeserve explores a deployment's real-time serving envelope
// (§VI-C) in two modes.
//
// Simulation (default): latency percentiles across an arrival-rate
// sweep, the maximum rate sustaining a P99 budget, and behaviour at
// overload — all from the analytic discrete-event model.
//
// Live serving (-listen): materializes the model, builds a replica-pool
// engine, and serves real inferences over HTTP with dynamic
// micro-batching, admission control, and a Prometheus /metrics
// endpoint, so the simulated envelope can be validated against a live
// process. With -attack it also drives its own load generator against
// the listener and compares the measured tail to the simulation.
//
// Usage:
//
//	edgeserve -model MobileNet-v2 -framework TFLite -device EdgeTPU
//	edgeserve -model SSD-MobileNet-v1 -framework TensorRT -device JetsonNano -p99 50ms -periodic
//	edgeserve -model CifarNet -listen :8080 -replicas 4
//	edgeserve -model CifarNet -listen 127.0.0.1:0 -attack auto,2s,4 -smoke
//
// Endpoints: POST /infer ({"data":[...]} or {"seed":n,"deadline_ms":m}),
// GET /healthz, GET /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgebench/internal/core"
	"edgebench/internal/opt"
	"edgebench/internal/server"
	"edgebench/internal/serving"
)

func main() {
	modelName := flag.String("model", "MobileNet-v2", "model name")
	fwName := flag.String("framework", "TFLite", "framework name")
	devName := flag.String("device", "EdgeTPU", "device name")
	p99 := flag.Duration("p99", 100*time.Millisecond, "tail-latency budget")
	duration := flag.Float64("duration", 90, "simulated seconds per point")
	periodic := flag.Bool("periodic", false, "fixed-interval (camera) arrivals instead of Poisson")
	seed := flag.Int64("seed", 1, "simulation and weight seed")

	listen := flag.String("listen", "", "serve real inferences over HTTP on this address (e.g. :8080); empty runs the simulation")
	replicas := flag.Int("replicas", 0, "executor replicas in the serving engine (0 = GOMAXPROCS)")
	maxBatch := flag.Int("maxbatch", 8, "max requests per micro-batch")
	maxWait := flag.Duration("maxwait", 2*time.Millisecond, "micro-batch window")
	queueCap := flag.Int("queue", 64, "admission queue capacity (overflow is shed with 429)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	attack := flag.String("attack", "", "fire the built-in load generator: rate,duration[,burst] with rate in req/s or 'auto'")
	smoke := flag.Bool("smoke", false, "with -attack: exit nonzero unless the run is clean (no errors, no shed, batching active)")
	quantize := flag.String("quantize", "", "execution quantization for live serving: 'int8' (per-tensor) or 'int8-perchannel'; empty serves FP32")
	optLevel := flag.String("opt", "O0", "graph optimization level for live serving: O0 (off), O1 (cleanups), O2 (cleanups + pattern fusion)")
	flag.Parse()

	if *quantize != "" && *quantize != "int8" && *quantize != "int8-perchannel" {
		fmt.Fprintf(os.Stderr, "edgeserve: unknown -quantize mode %q (want int8 or int8-perchannel)\n", *quantize)
		os.Exit(1)
	}
	level, err := opt.ParseLevel(*optLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		os.Exit(1)
	}

	s, err := core.New(*modelName, *fwName, *devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		os.Exit(1)
	}
	base := s.InferenceSeconds()
	fmt.Printf("%s via %s on %s: %.1f ms/inference (service ceiling %.1f req/s)\n\n",
		*modelName, *fwName, *devName, base*1e3, 1/base)

	if *listen == "" {
		simulate(s, *p99, *duration, *periodic, *seed)
		return
	}
	serve(s, serveOptions{
		listen:   *listen,
		replicas: *replicas,
		seed:     *seed,
		p99:      *p99,
		attack:   *attack,
		smoke:    *smoke,
		quantize: *quantize,
		level:    level,
		cfg: server.Config{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			QueueCap: *queueCap,
			Deadline: *deadline,
		},
	})
}

// simulate is the original analytic mode: a load sweep plus the max
// sustainable rate under the P99 budget.
func simulate(s *core.Session, p99 time.Duration, duration float64, periodic bool, seed int64) {
	base := s.InferenceSeconds()
	fmt.Printf("%-10s %10s %10s %10s %10s %8s\n", "load", "req/s", "p50", "p95", "p99", "util")
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.95, 1.2} {
		rate := rho / base
		r, err := serving.Simulate(s, serving.Config{
			ArrivalPerSec: rate, DurationSec: duration, Seed: seed, Periodic: periodic,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10.2f %10.1f %9.1fms %9.1fms %9.1fms %7.0f%%\n",
			rho, rate, r.P50*1e3, r.P95*1e3, r.P99*1e3, r.Utilization*100)
	}

	maxRate, err := serving.MaxSustainableRate(s, p99.Seconds(), duration, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		os.Exit(1)
	}
	if maxRate == 0 {
		fmt.Printf("\nno arrival rate meets p99 <= %v (a single inference already misses)\n", p99)
		return
	}
	fmt.Printf("\nmax sustainable rate at p99 <= %v: %.1f req/s (%.0f%% of the service ceiling)\n",
		p99, maxRate, 100*maxRate*base)
}

type serveOptions struct {
	listen   string
	replicas int
	seed     int64
	p99      time.Duration
	attack   string
	smoke    bool
	quantize string
	level    opt.Level
	cfg      server.Config
}

// serve is the live mode: materialize, optimize, build the engine and
// HTTP server, then either run the load generator or block until a
// signal. The optimization level runs before quantization so the int8
// pass sees the fused graph (epilogue-fused nodes keep FP32 fused
// kernels; the rest dispatch int8).
func serve(s *core.Session, o serveOptions) {
	if err := s.Materialize(o.seed); err != nil {
		fatal(err)
	}
	if o.level > opt.O0 {
		rep, err := s.Optimize(o.level)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("optimized at %s: %s\n", o.level, rep)
	}
	g := s.Lowered()
	switch o.quantize {
	case "int8":
		opt.QuantizeINT8(g)
	case "int8-perchannel":
		opt.QuantizeINT8PerChannel(g)
	}
	eng, err := serving.NewEngine(g, o.replicas)
	if err != nil {
		fatal(err)
	}
	srv := server.New(eng, o.cfg)
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("serving %s on http://%s (replicas %d, batch <= %d within %v, queue %d, exec %s, weights %d bytes)\n",
		s.Model.Name, addr, eng.Replicas(), o.cfg.MaxBatch, o.cfg.MaxWait, o.cfg.QueueCap,
		eng.ExecDType(), eng.WeightBytes())

	// The simulated envelope for the same deployment, for comparison.
	simMax, err := serving.MaxSustainableRate(s, o.p99.Seconds(), 30, o.seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated envelope: max %.1f req/s at p99 <= %v\n\n", simMax, o.p99)

	exitCode := 0
	if o.attack != "" {
		exitCode = runAttack(srv, eng, "http://"+addr, o, simMax)
	} else {
		waitForSignal()
		fmt.Println("\nshutting down: draining connections and queued requests...")
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve: shutdown:", err)
		exitCode = 1
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve: close:", err)
		exitCode = 1
	}
	os.Exit(exitCode)
}

// runAttack fires the load generator at the live listener, prints the
// comparison against the analytic envelope, scrapes /metrics, and (in
// smoke mode) asserts the run was clean. Returns the process exit code.
func runAttack(srv *server.Server, eng *serving.Engine, baseURL string, o serveOptions, simMax float64) int {
	opts, err := server.ParseAttack(o.attack)
	if err != nil {
		fatal(err)
	}
	if opts.Rate == 0 { // "auto": probe live capacity, stay well inside it
		single := measureLive(eng)
		liveCeil := 1 / single
		opts.Rate = 0.5 * liveCeil
		if simMax > 0 && 0.5*simMax < opts.Rate {
			opts.Rate = 0.5 * simMax
		}
		fmt.Printf("auto rate: live single-stream %.1f ms/inf (ceiling %.1f req/s) -> attacking at %.1f req/s\n",
			single*1e3, liveCeil, opts.Rate)
	}
	opts.Seed = o.seed
	fmt.Printf("attack: %.1f req/s for %v in bursts of %d\n", opts.Rate, opts.Duration, opts.Burst)
	rep, err := server.Attack(baseURL, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("live:      %s\n", rep)

	raw, series, err := server.ScrapeMetrics(baseURL)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n/metrics excerpt:")
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(line, "edgeserve_") {
			fmt.Println(" ", line)
		}
	}

	if !o.smoke {
		return 0
	}
	var problems []string
	if rep.Sent == 0 {
		problems = append(problems, "no requests sent")
	}
	if rep.Failed > 0 {
		problems = append(problems, fmt.Sprintf("%d failed requests", rep.Failed))
	}
	if rep.Shed > 0 {
		problems = append(problems, fmt.Sprintf("%d shed requests at a rate below the envelope", rep.Shed))
	}
	if rep.Deadline > 0 {
		problems = append(problems, fmt.Sprintf("%d deadline misses", rep.Deadline))
	}
	if ok := series[`edgeserve_requests_total{code="200"}`]; int(ok) != rep.OK {
		problems = append(problems, fmt.Sprintf("metrics report %d OKs, load generator saw %d", int(ok), rep.OK))
	}
	if errs := series["edgeserve_engine_errors_total"]; errs != 0 {
		problems = append(problems, fmt.Sprintf("%v engine errors", errs))
	}
	if opts.Burst > 1 && series["edgeserve_batch_size_max"] < 2 {
		problems = append(problems, "micro-batching never coalesced (batch_size_max < 2)")
	}
	if o.quantize != "" {
		if series[`edgeserve_exec_dtype{dtype="int8"}`] < 1 {
			problems = append(problems, "quantized serving did not report exec dtype int8")
		}
		if series["edgeserve_int8_kernel_dispatches"] < 1 {
			problems = append(problems, "quantized serving dispatched no int8 kernels")
		}
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "\nedgeserve: smoke FAILED: %s\n", strings.Join(problems, "; "))
		return 1
	}
	fmt.Println("\nsmoke OK: zero errors, zero shed, micro-batching active")
	return 0
}

// measureLive times a few single-stream inferences through the engine
// to find the real (host) service rate, which bounds a sane attack.
func measureLive(eng *serving.Engine) float64 {
	in := server.SeededInput(eng.InputShape(), 0)
	_, _ = eng.Infer(in) // warm the replica's arena; timing, not correctness
	const n = 3
	start := time.Now()
	for i := 0; i < n; i++ {
		_, _ = eng.Infer(in)
	}
	return time.Since(start).Seconds() / n
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgeserve:", err)
	os.Exit(1)
}
