// Command edgeserve explores a deployment's real-time serving envelope
// (§VI-C): latency percentiles across an arrival-rate sweep, the maximum
// rate sustaining a P99 budget, and behaviour at overload.
//
// Usage:
//
//	edgeserve -model MobileNet-v2 -framework TFLite -device EdgeTPU
//	edgeserve -model SSD-MobileNet-v1 -framework TensorRT -device JetsonNano -p99 50ms -periodic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edgebench/internal/core"
	"edgebench/internal/serving"
)

func main() {
	modelName := flag.String("model", "MobileNet-v2", "model name")
	fwName := flag.String("framework", "TFLite", "framework name")
	devName := flag.String("device", "EdgeTPU", "device name")
	p99 := flag.Duration("p99", 100*time.Millisecond, "tail-latency budget")
	duration := flag.Float64("duration", 90, "simulated seconds per point")
	periodic := flag.Bool("periodic", false, "fixed-interval (camera) arrivals instead of Poisson")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	s, err := core.New(*modelName, *fwName, *devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		os.Exit(1)
	}
	base := s.InferenceSeconds()
	fmt.Printf("%s via %s on %s: %.1f ms/inference (service ceiling %.1f req/s)\n\n",
		*modelName, *fwName, *devName, base*1e3, 1/base)

	fmt.Printf("%-10s %10s %10s %10s %10s %8s\n", "load", "req/s", "p50", "p95", "p99", "util")
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.95, 1.2} {
		rate := rho / base
		r, err := serving.Simulate(s, serving.Config{
			ArrivalPerSec: rate, DurationSec: *duration, Seed: *seed, Periodic: *periodic,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10.2f %10.1f %9.1fms %9.1fms %9.1fms %7.0f%%\n",
			rho, rate, r.P50*1e3, r.P95*1e3, r.P99*1e3, r.Utilization*100)
	}

	maxRate, err := serving.MaxSustainableRate(s, p99.Seconds(), *duration, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		os.Exit(1)
	}
	if maxRate == 0 {
		fmt.Printf("\nno arrival rate meets p99 <= %v (a single inference already misses)\n", *p99)
		return
	}
	fmt.Printf("\nmax sustainable rate at p99 <= %v: %.1f req/s (%.0f%% of the service ceiling)\n",
		*p99, maxRate, 100*maxRate*base)
}
