// Command calibrate compares the latency model's predictions against
// every anchor the paper reports, printing per-bar deviations and the
// figure-level aggregate ratios. It is the tool used to tune
// internal/core/calibration.go; EXPERIMENTS.md records its final output.
package main

import (
	"fmt"
	"os"
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/paperdata"
	"edgebench/internal/stats"
)

func predict(model, fw, dev string) (float64, error) {
	s, err := core.New(model, fw, dev)
	if err != nil {
		return 0, err
	}
	return s.InferenceSeconds(), nil
}

func row(label string, pred, paper float64) {
	dev := 100 * (pred/paper - 1)
	flag := ""
	if dev > 50 || dev < -35 {
		flag = "  <<<"
	}
	fmt.Printf("  %-42s pred %10.4fs  paper %10.4fs  %+7.1f%%%s\n", label, pred, paper, dev, flag)
}

func main() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("== Fig 2 anchors (best framework per device) ==")
	fig2fw := map[string]map[string]string{} // device -> model -> fw override
	defaultFw := map[string]string{
		"RPi3": "TFLite", "JetsonTX2": "PyTorch", "JetsonNano": "TensorRT",
		"EdgeTPU": "TFLite", "Movidius": "NCSDK", "PYNQ-Z1": "TVM",
	}
	fig2fw["RPi3"] = map[string]string{
		"AlexNet": "PyTorch", "VGG16": "PyTorch", "C3D": "PyTorch",
		"TinyYolo": "TensorFlow",
	}
	devOrder := []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius", "PYNQ-Z1"}
	for _, dev := range devOrder {
		models := paperdata.Fig2BestSeconds[dev]
		var names []string
		for m := range models {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			fw := defaultFw[dev]
			if o, ok := fig2fw[dev][m]; ok {
				fw = o
			}
			pred, err := predict(m, fw, dev)
			if err != nil {
				fmt.Printf("  %-42s ERROR %v\n", dev+" "+m+" ("+fw+")", err)
				continue
			}
			row(dev+" "+m+" ("+fw+")", pred, models[m])
		}
	}

	fmt.Println("== Fig 7: Nano PyTorch vs TensorRT ==")
	var speedups []float64
	var names []string
	for m := range paperdata.Fig7Nano {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		a := paperdata.Fig7Nano[m]
		pt, err := predict(m, "PyTorch", "JetsonNano")
		if err != nil {
			fail(err)
		}
		rt, err := predict(m, "TensorRT", "JetsonNano")
		if err != nil {
			fail(err)
		}
		row("Nano/PT "+m, pt, a.PyTorch)
		row("Nano/TRT "+m, rt, a.TensorRT)
		speedups = append(speedups, pt/rt)
	}
	fmt.Printf("  TensorRT avg speedup: pred %.2fx, paper %.2fx\n", stats.Mean(speedups), paperdata.Fig7AvgSpeedup)

	fmt.Println("== Fig 8: RPi PyTorch / TF / TFLite ==")
	var spTF, spPT []float64
	names = names[:0]
	for m := range paperdata.Fig8RPi {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		a := paperdata.Fig8RPi[m]
		pt, err := predict(m, "PyTorch", "RPi3")
		if err != nil {
			fail(err)
		}
		tf, err := predict(m, "TensorFlow", "RPi3")
		if err != nil {
			fail(err)
		}
		tfl, err := predict(m, "TFLite", "RPi3")
		if err != nil {
			fail(err)
		}
		row("RPi/PT "+m, pt, a.PyTorch)
		row("RPi/TF "+m, tf, a.TensorFlow)
		row("RPi/TFLite "+m, tfl, a.TFLite)
		spTF = append(spTF, tf/tfl)
		spPT = append(spPT, pt/tfl)
	}
	fmt.Printf("  TFLite avg speedup over TF: pred %.2fx, paper %.2fx\n", stats.Mean(spTF), paperdata.Fig8AvgSpeedupTF)
	fmt.Printf("  TFLite avg speedup over PT: pred %.2fx, paper %.2fx\n", stats.Mean(spPT), paperdata.Fig8AvgSpeedupPT)

	fmt.Println("== Fig 9/10: HPC speedups over TX2 (PyTorch) ==")
	hpc := []string{"Xeon", "GTXTitanX", "TitanXp", "RTX2080"}
	models := []string{"ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2",
		"Inception-v4", "AlexNet", "VGG16", "VGG19", "VGG-S", "YOLOv3", "TinyYolo", "C3D"}
	var all []float64
	for _, m := range models {
		tx2, err := predict(m, "PyTorch", "JetsonTX2")
		if err != nil {
			fail(err)
		}
		line := fmt.Sprintf("  %-18s TX2 %8.1fms |", m, tx2*1e3)
		for _, d := range hpc {
			t, err := predict(m, "PyTorch", d)
			if err != nil {
				fail(err)
			}
			sp := tx2 / t
			all = append(all, sp)
			line += fmt.Sprintf(" %s %5.2fx", d, sp)
		}
		fmt.Println(line)
	}
	fmt.Printf("  geomean speedup: pred %.2fx, paper ~%.1fx\n", stats.GeoMean(all), paperdata.Fig10GeomeanSpeedup)

	fmt.Println("== Fig 3/4 framework ordering spot checks ==")
	for _, m := range []string{"MobileNet-v2", "ResNet-50"} {
		for _, fw := range []string{"TensorFlow", "Caffe", "PyTorch", "DarkNet"} {
			p, err := predict(m, fw, "RPi3")
			if err != nil {
				fmt.Printf("  RPi %s/%s: %v\n", m, fw, err)
				continue
			}
			fmt.Printf("  RPi %-14s %-12s %8.2fs\n", m, fw, p)
		}
		for _, fw := range []string{"TensorFlow", "Caffe", "PyTorch", "DarkNet"} {
			p, err := predict(m, fw, "JetsonTX2")
			if err != nil {
				fmt.Printf("  TX2 %s/%s: %v\n", m, fw, err)
				continue
			}
			fmt.Printf("  TX2 %-14s %-12s %8.1fms\n", m, fw, p*1e3)
		}
	}
}
