// Command edgesim simulates one (model, framework, device) deployment in
// detail: the lowered graph, the per-layer roofline timeline, memory
// footprints, energy, and the modeled inference-time distribution.
//
// Usage:
//
//	edgesim -model ResNet-50 -framework TensorRT -device JetsonNano
//	edgesim -model MobileNet-v2 -framework TFLite -device EdgeTPU -layers
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/model"
	"edgebench/internal/power"
)

func main() {
	modelName := flag.String("model", "ResNet-18", "model name (see cmd/modelzoo)")
	fwName := flag.String("framework", "PyTorch", "framework name")
	devName := flag.String("device", "JetsonTX2", "device name")
	layers := flag.Bool("layers", false, "print the per-layer timeline")
	dot := flag.Bool("dot", false, "print the lowered graph as Graphviz DOT and exit")
	iters := flag.Int("iterations", 200, "inference-loop length (§V runs 200-1000)")
	docker := flag.Bool("docker", false, "run inside the Docker environment model")
	seed := flag.Int64("seed", 1, "noise seed")
	flag.Parse()

	s, err := core.New(*modelName, *fwName, *devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim:", err)
		listChoices()
		os.Exit(1)
	}
	s.Docker = *docker

	if *dot {
		fmt.Print(s.Lowered().DOT())
		return
	}

	g := s.Lowered()
	fmt.Printf("%s on %s via %s (%s graph, %s)\n",
		*modelName, *devName, *fwName, g.Mode, s.Status())
	fmt.Printf("  graph: %d ops, %.2f GFLOP, %.1f M params\n",
		g.NumOps(), g.FLOPs()/1e9, float64(g.Params())/1e6)
	fmt.Printf("  memory: static %.0f MB, dynamic %.0f MB (device %.0f MB)\n",
		s.StaticMemBytes()/(1<<20), s.DynamicMemBytes()/(1<<20),
		float64(s.Device.MemBytes)/(1<<20))

	sum := s.Summary(*iters, *seed)
	fmt.Printf("  inference time over %d runs: %s\n", *iters, sum)
	fmt.Printf("  cold start (excluded per §V): %.2f s\n", s.ColdStartSeconds())
	fmt.Printf("  utilization %.0f%%, compute-bound fraction %.0f%%\n",
		s.Utilization()*100, s.ComputeBoundFraction()*100)
	rf := s.Roofline()
	side := "memory-bound"
	if rf.ComputeBound {
		side = "compute-bound"
	}
	fmt.Printf("  roofline: intensity %.1f FLOP/B vs ridge %.1f (%s); achieved %.1f / attainable %.1f GFLOPS\n",
		rf.OperationalIntensity, rf.RidgePoint, side, rf.AchievedGFLOPS, rf.AttainableGFLOPS)
	fmt.Printf("  energy: %.1f mJ per inference at %.2f W active\n",
		power.EnergyPerInferenceJ(s)*1e3, power.ActiveWatts(s.Device, s.Utilization()))

	if *layers {
		fmt.Println("\n  per-layer timeline:")
		for _, lt := range s.LayerTimes() {
			bound := "compute"
			if lt.MemoryBound {
				bound = "memory"
			}
			fmt.Printf("    %-34s %9.3f ms  (%s-bound, dispatch %.3f ms)\n",
				lt.Node.Name, lt.Seconds*1e3, bound, lt.DispatchSec*1e3)
		}
	}
}

func listChoices() {
	fmt.Fprintln(os.Stderr, "\nmodels:")
	for _, m := range model.Names() {
		fmt.Fprintln(os.Stderr, "  ", m)
	}
	fmt.Fprintln(os.Stderr, "frameworks:")
	for _, f := range framework.All() {
		fmt.Fprintln(os.Stderr, "  ", f.Name)
	}
	fmt.Fprintln(os.Stderr, "devices:")
	for _, d := range device.All() {
		fmt.Fprintln(os.Stderr, "  ", d.Name)
	}
}
