// Command edgebench regenerates the paper's tables and figures.
//
// Usage:
//
//	edgebench -list                 list available experiments
//	edgebench -experiment fig2      run one experiment
//	edgebench -all                  run everything in paper order
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"edgebench/internal/harness"
)

var (
	asJSON     = flag.Bool("json", false, "emit reports as JSON instead of text tables")
	asMarkdown = flag.Bool("markdown", false, "emit reports as GitHub-flavored Markdown")
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	all := flag.Bool("all", false, "run every experiment")
	exp := flag.String("experiment", "", "experiment id (e.g. table1, fig2, ext1)")
	flag.Parse()

	switch {
	case *list:
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range harness.All() {
			if err := run(e); err != nil {
				fail(err)
			}
		}
	case *exp != "":
		e, ok := harness.Get(*exp)
		if !ok {
			fail(fmt.Errorf("unknown experiment %q (try -list)", *exp))
		}
		if err := run(e); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e harness.Experiment) error {
	rep, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case *asMarkdown:
		fmt.Println(rep.Markdown())
	default:
		fmt.Println(rep)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edgebench:", err)
	os.Exit(1)
}
