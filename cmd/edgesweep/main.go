// Command edgesweep runs the full-factorial characterization — every
// (model, device, framework) combination — and emits CSV for downstream
// analysis, mirroring the paper's open-source harness workflow.
//
// Usage:
//
//	edgesweep > sweep.csv
//	edgesweep -extensions -o sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/harness"
	"edgebench/internal/model"
)

func main() {
	extensions := flag.Bool("extensions", false, "include extension models (LSTMs, SqueezeNet, ShuffleNet)")
	summary := flag.Bool("summary", false, "print analysis tables instead of CSV (winners, EDP, scaling fits)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	models := model.All()
	if *extensions {
		models = model.AllWithExtensions()
	}
	rows := harness.Sweep(models)

	if *summary {
		for _, tab := range harness.SummarizeSweep(rows) {
			fmt.Print(tab.String())
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgesweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := harness.WriteCSV(w, rows); err != nil {
		fmt.Fprintln(os.Stderr, "edgesweep:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "edgesweep: %d combinations characterized\n", len(rows))
}
