package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// graphPkg is the only package allowed to mutate Graph.Nodes directly.
const graphPkg = "edgebench/internal/graph"

// tensorPkg is the kernel package whose allocator the pool-alloc rule
// guards against inside the executor.
const tensorPkg = "edgebench/internal/tensor"

// docPackages are the packages whose exported declarations must carry
// doc comments (the exported-doc rule): the IR-critical substrate plus
// the serving stack, whose API is what operators script against.
var docPackages = map[string]bool{
	"edgebench/internal/graph":   true,
	"edgebench/internal/tensor":  true,
	"edgebench/internal/verify":  true,
	"edgebench/internal/serving": true,
	"edgebench/internal/server":  true,
}

// finding is one rule violation at a source position.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

// floatEqAnalyzer flags == and != between floating-point operands. Exact
// float comparison is how calibration drift and quantization error sneak
// past review; compare against a tolerance instead. Two carve-outs:
// comparison against constant zero is exempt (zero is exactly
// representable, and `x == 0` division guards / sparse skips are
// idiomatic), and test files are not parsed at all, so golden-value
// assertions stay legal.
var floatEqAnalyzer = register(&Analyzer{
	Name: "float-eq",
	Doc:  "no ==/!= on floating-point operands; compare with a tolerance",
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
			be := n.(*ast.BinaryExpr)
			if be.Op != token.EQL && be.Op != token.NEQ {
				return
			}
			if isConstZero(ctx.pkg, be.X) || isConstZero(ctx.pkg, be.Y) {
				return
			}
			if isFloat(ctx.typeOf(be.X)) || isFloat(ctx.typeOf(be.Y)) {
				ctx.reportf(be.OpPos, "%s on floating-point operands; compare with a tolerance", be.Op)
			}
		})
	},
})

// isConstZero reports whether e is a compile-time constant equal to
// zero.
func isConstZero(p *pkg, e ast.Expr) bool {
	tv, ok := p.info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// nodesMutAnalyzer flags assignments through graph.Graph.Nodes outside
// internal/graph: appending, replacing, or writing elements of the node
// list bypasses Add/Append and breaks ID uniqueness, topological
// ordering, and freeze discipline.
var nodesMutAnalyzer = register(&Analyzer{
	Name:    "nodes-mut",
	Doc:     "no direct graph.Graph.Nodes mutation outside internal/graph",
	Applies: func(path string) bool { return path != graphPkg },
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
			as := n.(*ast.AssignStmt)
			for _, lhs := range as.Lhs {
				sel, ok := baseExpr(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Nodes" {
					continue
				}
				if !isGraphType(ctx.typeOf(sel.X)) {
					continue
				}
				ctx.reportf(sel.Pos(), "direct graph.Graph.Nodes mutation outside internal/graph; use Graph.Add or Graph.Append")
			}
		})
	},
})

// baseExpr unwraps parens, indexing, slicing, and derefs down to the
// expression being assigned through.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

func isGraphType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == graphPkg && obj.Name() == "Graph"
}

// poolAllocAnalyzer flags direct tensor.New calls inside internal/graph:
// executor eval paths must obtain output buffers through the run state's
// pool-aware allocator so the static-graph planner's arena keeps being
// reused. A new op wired up with tensor.New would silently regress
// steady-state allocation behaviour; the single legitimate non-planned
// fallback carries an edgelint:ignore directive.
var poolAllocAnalyzer = register(&Analyzer{
	Name:    "pool-alloc",
	Doc:     "no direct tensor.New inside internal/graph; use the pool-aware allocator",
	Applies: func(path string) bool { return path == graphPkg },
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "New" {
				return
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return
			}
			pn, ok := ctx.pkg.info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != tensorPkg {
				return
			}
			ctx.reportf(call.Pos(), "tensor.New inside internal/graph; allocate through the executor's pool-aware alloc so planned buffers are reused")
		})
	},
})

// optPkg is the pass-manager package: the sanctioned call site for
// graph rewrites outside internal/graph itself.
const optPkg = "edgebench/internal/opt"

// graphPassFns are the internal/graph rewrite functions the pass-verify
// rule fences in: each mutates graph structure, so production code must
// reach them through internal/opt, whose pass manager and checked
// wrappers re-prove the IR invariants after every run.
var graphPassFns = map[string]bool{
	"FoldBN":                 true,
	"FuseActivations":        true,
	"EliminateDead":          true,
	"EliminateDeadCount":     true,
	"QuantizeINT8":           true,
	"QuantizeINT8PerChannel": true,
	"CastFP16":               true,
	"Prune":                  true,
	"FreezeGraph":            true,
	"Pipeline":               true,
	"FusePatterns":           true,
	"FoldConstants":          true,
	"EliminateIdentity":      true,
}

// passVerifyAnalyzer flags references to internal/graph's rewrite
// passes outside internal/graph and internal/opt: a raw pass call skips
// the verify gate, so an illegal rewrite would surface as a corrupted
// inference instead of a structured diagnostic. Test files are not
// parsed, so pass unit tests keep calling the raw functions; deliberate
// unverified pipelines (the harness ablation tables) carry
// edgelint:ignore directives.
var passVerifyAnalyzer = register(&Analyzer{
	Name:    "pass-verify",
	Doc:     "no raw internal/graph pass calls outside internal/graph and internal/opt; go through the verified pass manager",
	Applies: func(path string) bool { return path != graphPkg && path != optPkg },
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
			sel := n.(*ast.SelectorExpr)
			if !graphPassFns[sel.Sel.Name] {
				return
			}
			obj := ctx.pkg.info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != graphPkg {
				return
			}
			ctx.reportf(sel.Pos(), "graph.%s bypasses the verified pass manager; use the internal/opt wrapper (or an opt.PassManager)", sel.Sel.Name)
		})
	},
})

// quantRoundTripFns are the tensor-package quantizers whose result the
// fake-quant rule watches for an immediate Dequantize.
var quantRoundTripFns = map[string]bool{
	"QuantizeSymmetric":  true,
	"QuantizePerChannel": true,
}

// fakeQuantAnalyzer flags QuantizeSymmetric(x).Dequantize() (and the
// per-channel variant) call chains: quantizing and immediately
// dequantizing simulates int8 error but throws the int8 codes away, so
// the node can never reach the real int8 kernels. Now that the runtime
// executes QTensors directly, keep the quantized tensor — bind it to a
// variable, hand it to the executor as QWeights, and derive the FP32
// shadow from that binding. Test files are not parsed, so accuracy
// tests may still round-trip freely.
var fakeQuantAnalyzer = register(&Analyzer{
	Name: "fake-quant",
	Doc:  "no Quantize*(x).Dequantize() round-trips; keep the QTensor",
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Dequantize" {
				return
			}
			inner, ok := sel.X.(*ast.CallExpr)
			if !ok {
				return
			}
			name, obj := calleeObject(ctx.pkg, inner.Fun)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != tensorPkg || !quantRoundTripFns[name] {
				return
			}
			ctx.reportf(call.Pos(), "%s(...).Dequantize() discards the int8 codes; keep the QTensor so the runtime can execute real int8 kernels", name)
		})
	},
})

// calleeObject resolves a call's callee expression to its name and
// types.Object (nil when the callee is not a plain function reference).
func calleeObject(p *pkg, fun ast.Expr) (string, types.Object) {
	switch x := fun.(type) {
	case *ast.Ident:
		return x.Name, p.info.Uses[x]
	case *ast.SelectorExpr:
		return x.Sel.Name, p.info.Uses[x.Sel]
	}
	return "", nil
}

// panicInErrAnalyzer flags direct panic calls inside functions whose
// signature returns error: the signature promised callers a recoverable
// failure path, so deliver the failure through it. Function literals are
// skipped — deferred recover helpers and intentionally-fatal callbacks
// are their own scope.
var panicInErrAnalyzer = register(&Analyzer{
	Name: "panic-in-err",
	Doc:  "a function that returns error must not call panic",
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
			fd := n.(*ast.FuncDecl)
			if fd.Body == nil || !returnsError(ctx.pkg, fd) {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj, ok := ctx.pkg.info.Uses[id]; ok {
					if _, builtin := obj.(*types.Builtin); !builtin {
						return true // a local function shadowing the builtin
					}
				}
				ctx.reportf(call.Pos(), "%s returns error but panics; return the error instead", fd.Name.Name)
				return true
			})
		})
	},
})

func returnsError(p *pkg, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	for _, field := range fd.Type.Results.List {
		if t := p.info.TypeOf(field.Type); t != nil && types.Identical(t, errType) {
			return true
		}
	}
	return false
}

// httpPkg anchors the handler-ctx rule's type checks.
const httpPkg = "net/http"

// handlerCtxAnalyzer flags HTTP handlers — functions or literals with
// the func(http.ResponseWriter, *http.Request) signature — that do
// per-request work (they read the request) but never consult
// r.Context() and never delegate r to another handler. Such a handler
// keeps serving after the client hung up or its deadline passed, which
// on an inference server means burning an engine slot for a response
// nobody will read. Handlers that never touch the request at all
// (static responders like /healthz) are exempt: they have no work to
// cancel.
var handlerCtxAnalyzer = register(&Analyzer{
	Name: "handler-ctx",
	Doc:  "HTTP handlers that read the request must consult r.Context()",
	Run: func(ctx *Context) {
		p := ctx.pkg
		check := func(ft *ast.FuncType, body *ast.BlockStmt, what string, pos token.Pos) {
			if body == nil || ft.Params == nil || len(ft.Params.List) != 2 {
				return
			}
			wField, rField := ft.Params.List[0], ft.Params.List[1]
			if len(wField.Names) != 1 || len(rField.Names) != 1 {
				return // combined or anonymous params: not the handler idiom
			}
			if !isResponseWriter(p.info.TypeOf(wField.Type)) || !isRequestPtr(p.info.TypeOf(rField.Type)) {
				return
			}
			reqObj := p.info.Defs[rField.Names[0]]
			if reqObj == nil {
				return // blank request param: nothing to misuse
			}
			isReq := func(e ast.Expr) bool {
				id, ok := e.(*ast.Ident)
				return ok && p.info.Uses[id] == reqObj
			}
			var usesReq, hasCtx, delegates bool
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if p.info.Uses[x] == reqObj {
						usesReq = true
					}
				case *ast.SelectorExpr:
					if x.Sel.Name == "Context" && isReq(x.X) {
						hasCtx = true
					}
				case *ast.CallExpr:
					for _, arg := range x.Args {
						if isReq(arg) {
							delegates = true
						}
					}
				}
				return true
			})
			if usesReq && !hasCtx && !delegates {
				ctx.reportf(pos, "%s reads the request but ignores r.Context(); propagate cancellation (or delegate r)", what)
			}
		}
		ctx.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
			switch d := n.(type) {
			case *ast.FuncDecl:
				check(d.Type, d.Body, "handler "+d.Name.Name, d.Name.Pos())
			case *ast.FuncLit:
				check(d.Type, d.Body, "handler literal", d.Pos())
			}
		})
	},
})

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == httpPkg && obj.Name() == "ResponseWriter"
}

// isRequestPtr reports whether t is *net/http.Request.
func isRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == httpPkg && obj.Name() == "Request"
}

// exportedDocAnalyzer flags exported top-level declarations without doc
// comments in the doc-mandatory packages: the graph IR and tensor
// kernels are the substrate every experiment trusts, and the serving
// stack is the API operators script against, so their contracts must be
// written down. A doc comment on a const/var/type block covers the whole
// block.
var exportedDocAnalyzer = register(&Analyzer{
	Name:    "exported-doc",
	Doc:     "exported declarations in IR-critical and serving packages need doc comments",
	Applies: func(path string) bool { return docPackages[path] },
	Run: func(ctx *Context) {
		undocumented := func(name *ast.Ident, doc *ast.CommentGroup, kind string) {
			if !name.IsExported() || doc != nil {
				return
			}
			ctx.reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
		}
		for _, f := range ctx.files() {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv != nil && !exportedReceiver(d.Recv) {
						continue // method on an unexported type: not API surface
					}
					undocumented(d.Name, d.Doc, "function")
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							undocumented(s.Name, doc, "type")
						case *ast.ValueSpec:
							doc := s.Doc
							if doc == nil {
								doc = d.Doc
							}
							for _, name := range s.Names {
								undocumented(name, doc, "value")
							}
						}
					}
				}
			}
		}
	},
})

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
