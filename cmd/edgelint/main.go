// Command edgelint is the repo's custom static analyzer: a stdlib-only
// (go/ast + go/types, no external dependencies) suite of registered
// analyzers running over a shared type-checked inspector, enforcing
// invariants gofmt and go vet cannot see because they are specific to
// this codebase. Findings print as "file:line: rule: message" (or JSON
// with -json) and any finding exits nonzero, so `make lint` gates CI.
//
// The rule registry (analysis.go holds the framework, rules.go the
// structural rules, concurrency.go the concurrency family):
//
//	float-eq        no ==/!= on float32/float64 expressions outside
//	                *_test.go — latency and FLOP accounting are floats,
//	                and exact comparison is how calibration drift sneaks
//	                in (constant-zero comparison is exempt)
//	nodes-mut       no direct graph.Graph.Nodes mutation outside
//	                internal/graph — everyone else goes through
//	                Graph.Add/Append so IDs, ordering, and freeze
//	                discipline stay intact
//	pool-alloc      no direct tensor.New inside internal/graph; eval
//	                paths allocate through the pool-aware allocator
//	panic-in-err    a function that returns error must not call panic —
//	                it promised its caller a recoverable failure path
//	handler-ctx     an HTTP handler that reads the request must consult
//	                r.Context() (or delegate r onward)
//	fake-quant      no Quantize*(x).Dequantize() call chains outside
//	                *_test.go — the round-trip discards the int8 codes
//	exported-doc    exported declarations in the IR-critical and serving
//	                packages must carry doc comments
//	atomic-mixed    no plain access to a variable elsewhere accessed via
//	                sync/atomic free functions — that mix is a data race
//	mutex-infer     no Infer/Run or tensor kernel calls while holding a
//	                mutex; a forward pass under a lock serializes every
//	                request goroutine
//	go-lifetime     goroutines in internal/server, internal/serving, and
//	                internal/tensor (the persistent kernel worker pool)
//	                need lifecycle plumbing (ctx, done channel, or
//	                WaitGroup) so shutdown can cancel or await them
//	wg-add          WaitGroup.Add goes before the go statement, never
//	                inside the spawned goroutine
//	unchecked-error no statement-position call may silently drop an
//	                error result (fmt print family and never-failing
//	                writers exempt; assign to _ to show intent)
//	into-alias      tensor *Into kernels must not receive a dst that
//	                provably aliases a source argument
//
// A finding can be suppressed with a trailing or preceding
// "// edgelint:ignore <rule>" comment; use sparingly and say why.
//
// Usage:
//
//	go run ./cmd/edgelint ./...
//	go run ./cmd/edgelint -json ./internal/graph
//	go run ./cmd/edgelint -disable exported-doc ./...
//	go run ./cmd/edgelint -enable atomic-mixed,mutex-infer ./...
//	go run ./cmd/edgelint -rules
//
// The analyzer always loads the whole module (a package cannot be
// type-checked without its dependencies) and reports findings only for
// the requested patterns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		enable  = flag.String("enable", "", "comma-separated rules to run (default: all)")
		disable = flag.String("disable", "", "comma-separated rules to skip")
		list    = flag.Bool("rules", false, "list registered rules and exit")
	)
	flag.Parse()
	if *list {
		for _, name := range analyzerNames() {
			for _, a := range analyzers {
				if a.Name == name {
					fmt.Printf("%-15s %s\n", a.Name, a.Doc)
				}
			}
		}
		return
	}
	enabled, err := ruleSet(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, module, err := findModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	pkgs, err := loadModule(root, module)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgelint:", err)
		os.Exit(2)
	}
	var findings []finding
	for _, p := range pkgs {
		if !selected(p.dir, root, args) {
			continue
		}
		findings = append(findings, lintPackageRules(p, enabled)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	if *jsonOut {
		data, err := renderJSON(findings, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgelint:", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s: %s\n", relPath(root, f.pos.Filename), f.pos.Line, f.rule, f.msg)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relPath shortens an absolute finding path to be module-root relative
// when possible.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// jsonFinding is the machine-readable finding shape the -json flag
// emits; the field set is the stable contract CI tooling parses.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// renderJSON marshals findings (root-relative paths, indented, and an
// empty array rather than null for zero findings) for -json output.
func renderJSON(findings []finding, root string) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: relPath(root, f.pos.Filename),
			Line: f.pos.Line,
			Col:  f.pos.Column,
			Rule: f.rule,
			Msg:  f.msg,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// selected reports whether a package directory matches any of the
// requested patterns ("./...", "./internal/graph", "internal/graph").
func selected(dir, root string, patterns []string) bool {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat != "..." && !strings.HasSuffix(pat, "/...") {
			pat = strings.TrimSuffix(pat, "/")
		}
		switch {
		case pat == "...":
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}

// pkg is one parsed and type-checked module package.
type pkg struct {
	path  string // import path
	dir   string
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loadModule parses and type-checks every non-test package under root in
// dependency order. Module-internal imports resolve against the packages
// checked so far; the standard library is type-checked from GOROOT
// source (the gc importer has no export data for it since Go 1.20).
func loadModule(root, module string) ([]*pkg, error) {
	fset := token.NewFileSet()
	byPath := map[string]*pkg{}
	var order []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		p, err := parseDir(fset, path, root, module)
		if err != nil {
			return err
		}
		if p != nil {
			byPath[p.path] = p
			order = append(order, p.path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sorted, err := topoSort(byPath, order, module)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		module: byPath,
		std:    importer.ForCompiler(fset, "source", nil),
	}
	for _, p := range sorted {
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, p.info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.path, err)
		}
		p.types = tpkg
	}
	return sorted, nil
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds no Go package.
func parseDir(fset *token.FileSet, dir, root, module string) (*pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &pkg{dir: dir, fset: fset, info: newInfo()}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		p.path = module
	} else {
		p.path = module + "/" + filepath.ToSlash(rel)
	}
	return p, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// imports returns the package's module-internal import paths.
func (p *pkg) imports(module string) []string {
	var out []string
	for _, f := range p.files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == module || strings.HasPrefix(path, module+"/") {
				out = append(out, path)
			}
		}
	}
	return out
}

// topoSort orders packages so every module-internal dependency precedes
// its importers.
func topoSort(byPath map[string]*pkg, order []string, module string) ([]*pkg, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var out []*pkg
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		case done:
			return nil
		}
		state[path] = visiting
		p := byPath[path]
		for _, dep := range p.imports(module) {
			if _, ok := byPath[dep]; !ok {
				return fmt.Errorf("%s imports %s, which has no source in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		out = append(out, p)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports against the packages
// type-checked so far and everything else (the standard library) against
// GOROOT source.
type moduleImporter struct {
	module map[string]*pkg
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		if p.types == nil {
			return nil, fmt.Errorf("import %s before it was type-checked (loader ordering bug)", path)
		}
		return p.types, nil
	}
	return m.std.Import(path)
}
