package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// env is a fabricated module for rule tests: packages type-check against
// each other through the same moduleImporter the CLI uses.
type env struct {
	t    *testing.T
	fset *token.FileSet
	imp  *moduleImporter
}

func newEnv(t *testing.T) *env {
	t.Helper()
	fset := token.NewFileSet()
	return &env{
		t:    t,
		fset: fset,
		imp: &moduleImporter{
			module: map[string]*pkg{},
			std:    importer.ForCompiler(fset, "source", nil),
		},
	}
}

// add parses and type-checks one single-file package under the given
// import path and registers it for later packages to import.
func (e *env) add(path, src string) *pkg {
	e.t.Helper()
	fname := strings.ReplaceAll(path, "/", "_") + ".go"
	f, err := parser.ParseFile(e.fset, fname, src, parser.ParseComments)
	if err != nil {
		e.t.Fatalf("parse %s: %v", path, err)
	}
	p := &pkg{path: path, fset: e.fset, files: []*ast.File{f}, info: newInfo()}
	conf := types.Config{Importer: e.imp}
	tpkg, err := conf.Check(path, e.fset, p.files, p.info)
	if err != nil {
		e.t.Fatalf("type-check %s: %v", path, err)
	}
	p.types = tpkg
	e.imp.module[path] = p
	return p
}

// fakeGraph is a stand-in for edgebench/internal/graph with just enough
// surface for the nodes-mut rule to resolve types against.
const fakeGraph = `package graph

// Node is a fake.
type Node struct{}

// Graph is a fake.
type Graph struct {
	Nodes []*Node
}

// Append is a fake.
func (g *Graph) Append(n *Node) { g.Nodes = append(g.Nodes, n) }
`

func rules(fs []finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.rule)
	}
	return out
}

func wantRules(t *testing.T, fs []finding, want ...string) {
	t.Helper()
	got := rules(fs)
	if len(got) != len(want) {
		t.Fatalf("got findings %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFloatEq(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/floats", `package floats

func cmp(a, b float64) bool { return a == b }

func cmpNE(a float32, b float64) bool { return float64(a) != b }

func zeroGuard(a float64) bool { return a == 0 }

func zeroGuardRev(a float64) bool { return 0.0 != a }

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }
`)
	wantRules(t, lintPackage(p), "float-eq", "float-eq")
}

func TestNodesMut(t *testing.T) {
	e := newEnv(t)
	e.add(graphPkg, fakeGraph)
	p := e.add("example.com/m/user", `package user

import "edgebench/internal/graph"

type other struct{ Nodes []int }

func appendMut(g *graph.Graph, n *graph.Node) { g.Nodes = append(g.Nodes, n) }

func indexMut(g graph.Graph, n *graph.Node) { g.Nodes[0] = n }

func sliceMut(g *graph.Graph) { g.Nodes = g.Nodes[:0] }

func notGraph(o *other) { o.Nodes = append(o.Nodes, 1) }

func readOnly(g *graph.Graph) int { return len(g.Nodes) }
`)
	wantRules(t, lintPackage(p), "nodes-mut", "nodes-mut", "nodes-mut")
}

func TestNodesMutAllowedInsideGraph(t *testing.T) {
	e := newEnv(t)
	p := e.add(graphPkg, fakeGraph)
	for _, f := range lintPackage(p) {
		if f.rule == "nodes-mut" {
			t.Fatalf("nodes-mut reported inside %s: %v", graphPkg, f.msg)
		}
	}
}

// fakeTensor is a stand-in for edgebench/internal/tensor with just the
// allocator surface the pool-alloc rule resolves against.
const fakeTensor = `package tensor

// Tensor is a fake.
type Tensor struct{}

// New is a fake.
func New(shape ...int) *Tensor { return &Tensor{} }
`

func TestPoolAlloc(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensor)
	p := e.add(graphPkg, `package graph

import "edgebench/internal/tensor"

func alloc() *tensor.Tensor { return tensor.New(1, 2) }

func allowed() *tensor.Tensor {
	return tensor.New(3) // edgelint:ignore pool-alloc
}

type local struct{}

func (local) New(shape ...int) *tensor.Tensor { return nil }

func notTensorNew(l local) *tensor.Tensor { return l.New(5) }
`)
	wantRules(t, lintPackage(p), "pool-alloc")
}

func TestPoolAllocOutsideGraph(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensor)
	p := e.add("example.com/m/user", `package user

import "edgebench/internal/tensor"

func alloc() *tensor.Tensor { return tensor.New(4) }
`)
	for _, f := range lintPackage(p) {
		if f.rule == "pool-alloc" {
			t.Fatalf("pool-alloc reported outside %s: %s", graphPkg, f.msg)
		}
	}
}

// fakeGraphPasses is a stand-in for edgebench/internal/graph with just
// the pass surface the pass-verify rule resolves against.
const fakeGraphPasses = `package graph

// Graph is a fake.
type Graph struct{}

// Pass is a fake.
type Pass func(*Graph)

// FoldBN is a fake.
func FoldBN(g *Graph) {}

// FuseActivations is a fake.
func FuseActivations(g *Graph) {}

// Pipeline is a fake.
func Pipeline(passes ...Pass) Pass { return nil }

// Validate is a fake (not a pass; must not be flagged).
func Validate(g *Graph) {}
`

func TestPassVerify(t *testing.T) {
	e := newEnv(t)
	e.add(graphPkg, fakeGraphPasses)
	p := e.add("example.com/m/user", `package user

import "edgebench/internal/graph"

func lower(g *graph.Graph) { graph.FoldBN(g) }

func pipeline() graph.Pass { return graph.Pipeline(graph.FuseActivations) }

func suppressed(g *graph.Graph) {
	graph.FoldBN(g) // edgelint:ignore pass-verify
}

func notAPass(g *graph.Graph) { graph.Validate(g) }

// FoldBN is a local function, not the graph pass.
func FoldBN() {}

func local() { FoldBN() }
`)
	wantRules(t, lintPackage(p), "pass-verify", "pass-verify", "pass-verify")
}

func TestPassVerifyAllowedInOpt(t *testing.T) {
	e := newEnv(t)
	e.add(graphPkg, fakeGraphPasses)
	p := e.add(optPkg, `package opt

import "edgebench/internal/graph"

// FoldBN is a fake verified wrapper.
func FoldBN(g *graph.Graph) { graph.FoldBN(g) }
`)
	for _, f := range lintPackage(p) {
		if f.rule == "pass-verify" {
			t.Fatalf("pass-verify reported inside %s: %s", optPkg, f.msg)
		}
	}
}

func TestPanicInErr(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/panics", `package panics

import "errors"

func bad() error { panic("boom") }

func badNamed() (err error) {
	if true {
		panic("nested boom")
	}
	return nil
}

func okNoErr() { panic("allowed: no error in signature") }

func okReturns() error { return errors.New("fine") }

func okFuncLit() error {
	defer func() { panic("recover helpers are exempt") }()
	return nil
}
`)
	wantRules(t, lintPackage(p), "panic-in-err", "panic-in-err")
}

func TestExportedDoc(t *testing.T) {
	e := newEnv(t)
	p := e.add("edgebench/internal/tensor", `package tensor

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

// Blocks cover their specs.
const (
	BlockA = 1
	BlockB = 2
)

func Exported() {}

func unexported() {}

// Method docs count.
func (d Documented) Ok() {}

func (d Documented) Missing() {}

type hidden struct{}

func (h hidden) Exported() {} // unexported receiver: not API
`)
	wantRules(t, lintPackage(p), "exported-doc", "exported-doc", "exported-doc")
}

func TestIgnoreDirective(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/ign", `package ign

func sameLine(a, b float64) bool { return a == b } // edgelint:ignore float-eq

// edgelint:ignore float-eq
func lineAbove(a, b float64) bool { return a == b }

// edgelint:ignore nodes-mut
func wrongRule(a, b float64) bool { return a == b }
`)
	wantRules(t, lintPackage(p), "float-eq")
}

func TestSelected(t *testing.T) {
	root := "/repo"
	cases := []struct {
		dir      string
		patterns []string
		want     bool
	}{
		{"/repo/internal/graph", []string{"./..."}, true},
		{"/repo/internal/graph", []string{"./internal/..."}, true},
		{"/repo/internal/graph", []string{"./internal/graph"}, true},
		{"/repo/internal/graph", []string{"internal/graph"}, true},
		{"/repo/internal/graph", []string{"./internal/graph/"}, true},
		{"/repo/internal/graph", []string{"./cmd/..."}, false},
		{"/repo/internal/graphics", []string{"./internal/graph/..."}, false},
		{"/repo", []string{"./..."}, true},
	}
	for _, c := range cases {
		if got := selected(c.dir, root, c.patterns); got != c.want {
			t.Errorf("selected(%q, %v) = %v, want %v", c.dir, c.patterns, got, c.want)
		}
	}
}

// TestSelfLint runs the analyzer over the repository itself: the tree
// must stay lint-clean, and the loader must keep handling the real
// module.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, module, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	pkgs, err := loadModule(root, module)
	if err != nil {
		t.Fatalf("loadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, p := range pkgs {
		for _, f := range lintPackage(p) {
			t.Errorf("%s:%d: %s: %s", f.pos.Filename, f.pos.Line, f.rule, f.msg)
		}
	}
}

// TestFakeQuant pins the fake-quant rule: a direct
// QuantizeSymmetric/QuantizePerChannel call chained straight into
// Dequantize is flagged, while the two-statement form (which keeps the
// QTensor alive) and unrelated Dequantize methods are not.
func TestFakeQuant(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensor+`
// QTensor is a fake.
type QTensor struct{}

// Dequantize is a fake.
func (q *QTensor) Dequantize() *Tensor { return nil }

// QuantizeSymmetric is a fake.
func QuantizeSymmetric(t *Tensor) *QTensor { return nil }

// QuantizePerChannel is a fake.
func QuantizePerChannel(t *Tensor) *QTensor { return nil }
`)
	p := e.add("example.com/m/quser", `package quser

import "edgebench/internal/tensor"

func chained(t *tensor.Tensor) *tensor.Tensor {
	return tensor.QuantizeSymmetric(t).Dequantize()
}

func chainedPerChannel(t *tensor.Tensor) *tensor.Tensor {
	return tensor.QuantizePerChannel(t).Dequantize()
}

func twoStatement(t *tensor.Tensor) *tensor.Tensor {
	q := tensor.QuantizeSymmetric(t)
	return q.Dequantize()
}

type other struct{}

func (other) Dequantize() int { return 0 }

func makeOther() other { return other{} }

func unrelated() int { return makeOther().Dequantize() }
`)
	wantRules(t, lintPackage(p), "fake-quant", "fake-quant")
}

// TestHandlerCtx pins the handler-ctx rule: handlers doing per-request
// work must consult r.Context() or delegate r; static responders and
// non-handler signatures are exempt.
func TestHandlerCtx(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/httpuser", `package httpuser

import "net/http"

func bad(w http.ResponseWriter, r *http.Request) {
	if r.Method != "POST" {
		w.WriteHeader(405)
	}
}

func good(w http.ResponseWriter, r *http.Request) {
	<-r.Context().Done()
	w.WriteHeader(200)
}

func delegates(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r)
}

func static(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok"))
}

var litBad = func(w http.ResponseWriter, r *http.Request) {
	_ = r.URL
}

func notHandler(a string, b int) { _ = a }
`)
	wantRules(t, lintPackage(p), "handler-ctx", "handler-ctx")
}

// TestAtomicMixed seeds the acceptance bug: a struct field bumped via
// atomic.AddInt64 in one method and read plainly in another — the
// DispatchCounts-style race the typed atomics exist to prevent.
func TestAtomicMixed(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/counters", `package counters

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) inc() { atomic.AddInt64(&s.hits, 1) }

func (s *stats) read() int64 { return s.hits }

func (s *stats) atomicRead() int64 { return atomic.LoadInt64(&s.hits) }

func (s *stats) plainOnly() int64 { s.misses++; return s.misses }

var total int64

func bump() { atomic.AddInt64(&total, 1) }

func reset() { total = 0 }
`)
	wantRules(t, lintPackage(p), "atomic-mixed", "atomic-mixed")
}

// fakeServing is a stand-in engine for the mutex-infer rule (the real
// docPackages set covers internal/serving, so the fakes carry docs).
const fakeServing = `package serving

// Engine is a fake.
type Engine struct{}

// Infer is a fake.
func (e *Engine) Infer(x []float32) ([]float32, error) { return x, nil }
`

func TestMutexInfer(t *testing.T) {
	e := newEnv(t)
	e.add("edgebench/internal/serving", fakeServing)
	p := e.add("example.com/m/muser", `package muser

import (
	"sync"

	"edgebench/internal/serving"
)

type srv struct {
	mu  sync.Mutex
	eng *serving.Engine
}

func (s *srv) bad(x []float32) ([]float32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Infer(x)
}

func (s *srv) good(x []float32) ([]float32, error) {
	s.mu.Lock()
	s.mu.Unlock()
	return s.eng.Infer(x)
}
`)
	fs := lintPackage(p)
	wantRules(t, fs, "mutex-infer")
	if !strings.Contains(fs[0].msg, "s.mu") {
		t.Fatalf("finding should name the held mutex: %s", fs[0].msg)
	}
}

// TestGoLifetime pins the serving-stack goroutine rule: unplumbed
// goroutines (literal or resolved same-package callee) are flagged,
// while WaitGroup/done-channel/context plumbing passes.
func TestGoLifetime(t *testing.T) {
	e := newEnv(t)
	p := e.add("edgebench/internal/server", `package server

import (
	"context"
	"sync"
)

type worker struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (w *worker) start() {
	w.wg.Add(1)
	go w.loop()
	go leak()
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
	go func() {
		defer w.wg.Done()
	}()
	go handle(context.Background())
}

func (w *worker) loop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		}
	}
}

func leak() {
	for i := 0; ; i++ {
		_ = i
	}
}

func handle(ctx context.Context) { <-ctx.Done() }
`)
	wantRules(t, lintPackage(p), "go-lifetime", "go-lifetime")
}

// TestGoLifetimeTensorPool pins the rule's tensor-package contract: the
// persistent worker-pool idiom (worker receives the generation's stop
// channel as an argument) passes via the done-channel exemption, while
// an unplumbed long-lived goroutine in the same package still fires.
func TestGoLifetimeTensorPool(t *testing.T) {
	e := newEnv(t)
	p := e.add("edgebench/internal/tensor", `package tensor

type task struct{}

func ensure() {
	queue := make(chan *task)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go poolWorker(queue, stop) // exempt: stop channel handed in
	}
	go runaway()
}

func poolWorker(queue chan *task, stop chan struct{}) {
	for {
		select {
		case <-queue:
		case <-stop:
			return
		}
	}
}

func runaway() {
	for i := 0; ; i++ {
		_ = i
	}
}
`)
	wantRules(t, lintPackage(p), "go-lifetime")
}

// TestGoLifetimeScope proves the rule stays out of kernel packages:
// the same unplumbed goroutine is legal outside the serving stack.
func TestGoLifetimeScope(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/elsewhere", `package elsewhere

func spawn() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}
`)
	for _, f := range lintPackage(p) {
		if f.rule == "go-lifetime" {
			t.Fatalf("go-lifetime fired outside the serving stack: %s", f.msg)
		}
	}
}

// TestGoLifetimeClusterScope pins internal/cluster into the rule's
// scope: the distributed pipeline's connection readers and compute
// loops must be joinable, so an unplumbed goroutine there fires while
// the worker's done-channel idiom passes.
func TestGoLifetimeClusterScope(t *testing.T) {
	e := newEnv(t)
	p := e.add("edgebench/internal/cluster", `package cluster

type Worker struct {
	done chan struct{}
}

func (w *Worker) run() {
	go w.acceptLoop() // exempt: selects on w.done
	go orphanReader() // unplumbed: must fire
}

func (w *Worker) acceptLoop() {
	for {
		select {
		case <-w.done:
			return
		}
	}
}

func orphanReader() {
	for i := 0; ; i++ {
		_ = i
	}
}
`)
	wantRules(t, lintPackage(p), "go-lifetime")
}

func TestWgAdd(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/wga", `package wga

import "sync"

func bad() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}

func good() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`)
	wantRules(t, lintPackage(p), "wg-add")
}

func TestUncheckedError(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/euser", `package euser

import (
	"bytes"
	"errors"
	"fmt"
	"os"
)

func work() error { return errors.New("x") }

func multi() (int, error) { return 0, nil }

func drop() {
	work()
	multi()
	_ = work()
	if err := work(); err != nil {
		_ = err
	}
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "x")
	var b bytes.Buffer
	b.WriteString("x")
	defer work()
	go work()
}
`)
	wantRules(t, lintPackage(p), "unchecked-error", "unchecked-error")
}

// fakeTensorInto is a stand-in kernel surface for the into-alias rule.
const fakeTensorInto = `package tensor

// Tensor is a fake.
type Tensor struct{ Data []float32 }

// AddInto is a fake.
func AddInto(dst, a, b *Tensor) {}

// DenseInto is a fake.
func DenseInto(dst []float32, w *Tensor, bias, x []float32) {}
`

func TestIntoAlias(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensorInto)
	p := e.add("example.com/m/iuser", `package iuser

import "edgebench/internal/tensor"

func bad(t, u *tensor.Tensor) { tensor.AddInto(t, t, u) }

func badField(t *tensor.Tensor, w *tensor.Tensor) {
	tensor.DenseInto(t.Data, w, nil, t.Data)
}

func ok(d, a, b *tensor.Tensor) { tensor.AddInto(d, a, b) }

func unprovable(ts []*tensor.Tensor) { tensor.AddInto(ts[0], ts[0], ts[1]) }
`)
	wantRules(t, lintPackage(p), "into-alias", "into-alias")
}

// TestRuleSelection pins the -enable/-disable plumbing: the enabled set
// filters analyzers, and unknown names are rejected loudly.
func TestRuleSelection(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/sel", `package sel

import "errors"

func work() error { return errors.New("x") }

func f(a, b float64) bool {
	work()
	return a == b
}
`)
	wantRules(t, lintPackage(p), "unchecked-error", "float-eq")

	only, err := ruleSet("float-eq", "")
	if err != nil {
		t.Fatalf("ruleSet(enable): %v", err)
	}
	wantRules(t, lintPackageRules(p, only), "float-eq")

	without, err := ruleSet("", "float-eq")
	if err != nil {
		t.Fatalf("ruleSet(disable): %v", err)
	}
	wantRules(t, lintPackageRules(p, without), "unchecked-error")

	if _, err := ruleSet("no-such-rule", ""); err == nil {
		t.Fatal("unknown rule name must be rejected")
	}
	if _, err := ruleSet("", "float-eq, no-such-rule"); err == nil {
		t.Fatal("unknown rule name in -disable must be rejected")
	}
}

// TestRenderJSON is the golden test for -json output: stable field
// names, root-relative paths, findings already filtered through ignore
// directives, and an empty array (not null) when clean.
func TestRenderJSON(t *testing.T) {
	e := newEnv(t)
	p := e.add("example.com/m/jsonpkg", `package jsonpkg

func cmp(a, b float64) bool { return a == b }

func ignored(a, b float64) bool { return a == b } // edgelint:ignore float-eq
`)
	got, err := renderJSON(lintPackage(p), ".")
	if err != nil {
		t.Fatalf("renderJSON: %v", err)
	}
	want := `[
  {
    "file": "example.com_m_jsonpkg.go",
    "line": 3,
    "col": 40,
    "rule": "float-eq",
    "msg": "== on floating-point operands; compare with a tolerance"
  }
]`
	if string(got) != want {
		t.Fatalf("JSON output drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	empty, err := renderJSON(nil, ".")
	if err != nil {
		t.Fatalf("renderJSON(empty): %v", err)
	}
	if string(empty) != "[]" {
		t.Fatalf("empty findings must render as [], got %s", empty)
	}
}

// TestRegistry pins that every documented rule is registered exactly
// once (register panics on duplicates at init, so reaching here means
// names are unique).
func TestRegistry(t *testing.T) {
	want := []string{
		"atomic-mixed", "exported-doc", "fake-quant", "float-eq",
		"go-lifetime", "handler-ctx", "hot-pack", "into-alias",
		"mutex-infer", "nodes-mut", "panic-in-err", "pass-verify",
		"pool-alloc", "unchecked-error", "wg-add",
	}
	got := analyzerNames()
	if len(got) != len(want) {
		t.Fatalf("registered rules %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rule %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// fakeTensorPack is a stand-in exposing the AOT panel-pack builders the
// hot-pack rule resolves against.
const fakeTensorPack = `package tensor

// Tensor is a fake.
type Tensor struct{}

// PackedWeights is a fake.
type PackedWeights struct{}

// PackConvWeights is a fake.
func PackConvWeights(w *Tensor) *PackedWeights { return nil }

// PackGemmB is a fake.
func PackGemmB(b []float32, k, n int) *PackedWeights { return nil }
`

// TestHotPack pins the hot-pack rule: a pack-builder call two static
// hops below Infer is flagged, while the same builders at session open
// (NewEngine) or in a function unreachable from any entry point are
// design, not findings.
func TestHotPack(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensorPack)
	p := e.add("edgebench/internal/serving", `package serving

import "edgebench/internal/tensor"

// Engine is a fake.
type Engine struct{}

// Infer is a hot root; the pack call two hops down must be flagged.
func (e *Engine) Infer(x *tensor.Tensor) { e.step(x) }

func (e *Engine) step(x *tensor.Tensor) { helper(x) }

func helper(x *tensor.Tensor) { _ = tensor.PackConvWeights(x) }

// NewEngine is session-open work: packing here is the point.
func NewEngine() *Engine {
	_ = tensor.PackGemmB(nil, 1, 1)
	return &Engine{}
}

// Warm is exported but unreachable from any inference entry point.
func Warm(x *tensor.Tensor) { _ = tensor.PackConvWeights(x) }
`)
	wantRules(t, lintPackage(p), "hot-pack")
}

// TestHotPackGoroutine: a pack call inside a function literal spawned by
// a hot root is still on the request path.
func TestHotPackGoroutine(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensorPack)
	p := e.add(graphPkg, `package graph

import "edgebench/internal/tensor"

// Executor is a fake.
type Executor struct{}

// Run is a hot root spawning a packing worker.
func (e *Executor) Run(x *tensor.Tensor) {
	done := make(chan struct{})
	go func() {
		_ = tensor.PackConvWeights(x)
		close(done)
	}()
	<-done
}
`)
	wantRules(t, lintPackage(p), "hot-pack")
}

// TestHotPackScope: identical code outside the executor/serving
// packages is not in the rule's scope.
func TestHotPackScope(t *testing.T) {
	e := newEnv(t)
	e.add(tensorPkg, fakeTensorPack)
	p := e.add("example.com/m/bench", `package bench

import "edgebench/internal/tensor"

func Infer(x *tensor.Tensor) { _ = tensor.PackConvWeights(x) }
`)
	for _, f := range lintPackage(p) {
		if f.rule == "hot-pack" {
			t.Fatalf("hot-pack reported out of scope: %s", f.msg)
		}
	}
}
