// Concurrency rule family: the checks in this file reason about
// goroutines, locks, and atomics — the bug class the race detector only
// catches when a test happens to interleave badly, but which a static
// walk over the type-checked AST can prove structurally.
package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// modulePrefix scopes receiver-type checks to this module's packages.
const modulePrefix = "edgebench/"

// atomicOpPrefixes are the sync/atomic free functions that take an
// address; any of them marks the pointed-to variable as atomic.
var atomicOpPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicOp(name string) bool {
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// refObject resolves a variable reference (identifier or field
// selection) to its object; nil for anything more complex.
func refObject(p *pkg, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return refObject(p, x.X)
	case *ast.Ident:
		return p.info.Uses[x]
	case *ast.SelectorExpr:
		return p.info.Uses[x.Sel]
	}
	return nil
}

// atomicMixedAnalyzer flags variables that are accessed both through
// sync/atomic free functions and through plain reads/writes in the same
// package. Mixing the two is a data race the typed atomic wrappers
// (atomic.Int64 and friends) make impossible, which is why the executor
// publishes its dispatch counters through them; code that reaches for
// atomic.AddInt64(&s.n, 1) and then reads s.n directly has silently
// opted back into the race.
var atomicMixedAnalyzer = register(&Analyzer{
	Name: "atomic-mixed",
	Doc:  "no plain access to a variable that is elsewhere accessed via sync/atomic",
	Run: func(ctx *Context) {
		p := ctx.pkg
		atomicAt := map[types.Object]token.Pos{}
		sanctioned := map[ast.Node]bool{}
		ctx.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicOp(sel.Sel.Name) || len(call.Args) == 0 {
				return
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return
			}
			pn, ok := p.info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return
			}
			target := un.X
			for {
				if pe, ok := target.(*ast.ParenExpr); ok {
					target = pe.X
					continue
				}
				break
			}
			obj := refObject(p, target)
			if obj == nil {
				return
			}
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = call.Pos()
			}
			sanctioned[target] = true
		})
		if len(atomicAt) == 0 {
			return
		}
		report := func(n ast.Node, obj types.Object) {
			apos := p.fset.Position(atomicAt[obj])
			ctx.reportf(n.Pos(), "plain access to %s, which is accessed via sync/atomic at %s:%d; mixed atomic/plain access is a data race — use a typed atomic (atomic.Int64 etc.)",
				obj.Name(), filepath.Base(apos.Filename), apos.Line)
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.KeyValueExpr:
				// Composite-literal keys name fields, they do not read them.
				ast.Inspect(x.Value, walk)
				return false
			case *ast.SelectorExpr:
				if !sanctioned[ast.Node(x)] {
					if obj := p.info.Uses[x.Sel]; obj != nil {
						if _, ok := atomicAt[obj]; ok {
							report(x, obj)
						}
					}
				}
				ast.Inspect(x.X, walk)
				return false
			case *ast.Ident:
				if !sanctioned[ast.Node(x)] {
					if obj := p.info.Uses[x]; obj != nil {
						if _, ok := atomicAt[obj]; ok {
							report(x, obj)
						}
					}
				}
			}
			return true
		}
		for _, f := range ctx.files() {
			ast.Inspect(f, walk)
		}
	},
})

// isSyncNamed reports whether t (or its pointee) is the named sync
// package type, e.g. sync.Mutex or sync.WaitGroup.
func isSyncNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// inferMethods are the blocking inference entry points the mutex-infer
// rule refuses to see called under a lock.
var inferMethods = map[string]bool{
	"Infer":      true,
	"InferBatch": true,
	"Run":        true,
	"RunValues":  true,
}

// expensiveCall reports whether call is inference or kernel work: a
// module-internal Infer/Run-family method, or an exported tensor-package
// *Into kernel.
func expensiveCall(ctx *Context, call *ast.CallExpr) (string, bool) {
	name, obj := calleeObject(ctx.pkg, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok && inferMethods[name] && strings.HasPrefix(obj.Pkg().Path(), modulePrefix) {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return name, true
		}
	}
	if obj.Pkg().Path() == tensorPkg && ast.IsExported(name) && strings.HasSuffix(name, "Into") {
		return name, true
	}
	return "", false
}

// mutexCall classifies a call as a lock-state transition on a
// sync.Mutex/RWMutex and returns the mutex expression as its key.
func mutexCall(ctx *Context, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := ctx.typeOf(sel.X)
	if !isSyncNamed(t, "Mutex") && !isSyncNamed(t, "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// mutexInferAnalyzer flags inference and kernel calls made while a mutex
// is held. A lock held across Infer/Run serializes every request
// goroutine behind one forward pass — exactly the throughput collapse
// the replica pool exists to avoid — and a lock held across a kernel
// call extends the critical section by a full GEMM. The analysis is a
// linear position-ordered scan per function: Lock acquires, Unlock
// releases (a deferred Unlock holds to function end), and any expensive
// call with a lock outstanding is reported. Nested function literals are
// separate scopes with their own scan.
var mutexInferAnalyzer = register(&Analyzer{
	Name: "mutex-infer",
	Doc:  "no Infer/Run or tensor kernel calls while holding a mutex",
	Run: func(ctx *Context) {
		const (
			evAcquire = iota
			evRelease
			evExpensive
		)
		type event struct {
			pos  token.Pos
			kind int
			key  string
		}
		scan := func(body *ast.BlockStmt) {
			var events []event
			deferred := map[ast.Node]bool{}
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false // its own scope, scanned separately
				case *ast.DeferStmt:
					deferred[x.Call] = true
				case *ast.CallExpr:
					if key, method, ok := mutexCall(ctx, x); ok {
						switch {
						case method == "Lock" || method == "RLock":
							events = append(events, event{x.Pos(), evAcquire, key})
						case deferred[ast.Node(x)]:
							// deferred Unlock: held to function end
						default:
							events = append(events, event{x.Pos(), evRelease, key})
						}
						return true
					}
					if name, ok := expensiveCall(ctx, x); ok && !deferred[ast.Node(x)] {
						events = append(events, event{x.Pos(), evExpensive, name})
					}
				}
				return true
			})
			sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
			held := map[string]int{}
			heldCount := 0
			for _, ev := range events {
				switch ev.kind {
				case evAcquire:
					held[ev.key]++
					heldCount++
				case evRelease:
					if held[ev.key] > 0 {
						held[ev.key]--
						heldCount--
					}
				case evExpensive:
					if heldCount > 0 {
						var keys []string
						for k, c := range held {
							if c > 0 {
								keys = append(keys, k)
							}
						}
						sort.Strings(keys)
						ctx.reportf(ev.pos, "%s called while holding %s; inference/kernel work under a lock serializes all callers — release the lock before dispatching",
							ev.key, strings.Join(keys, ", "))
					}
				}
			}
		}
		ctx.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					scan(x.Body)
				}
			case *ast.FuncLit:
				scan(x.Body)
			}
		})
	},
})

// funcDeclMap indexes the package's function and method declarations by
// their object, so `go b.loop()` can be resolved to loop's body.
func funcDeclMap(ctx *Context) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range ctx.files() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := ctx.pkg.info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// goBody resolves the body a go statement will execute: the literal's
// body for `go func(){...}()`, or the declaration's body for a named
// same-package callee. Nil when the callee is from another package (the
// rule stays silent rather than guess).
func goBody(ctx *Context, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if _, obj := calleeObject(ctx.pkg, g.Call.Fun); obj != nil {
		if fd, ok := decls[obj]; ok {
			return fd.Body
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDoneChan reports whether t is a channel of empty struct — the done-
// channel idiom — in any direction.
func isDoneChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// hasLifecyclePlumbing reports whether the scanned body touches any
// shutdown/completion mechanism: a context.Context value, a receive from
// a done channel (chan struct{}), a range over a channel (terminates on
// close), or a WaitGroup Done/Wait.
func hasLifecyclePlumbing(ctx *Context, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if obj := ctx.pkg.info.Uses[x]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isDoneChan(ctx.typeOf(x.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if t := ctx.typeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") &&
				isSyncNamed(ctx.typeOf(sel.X), "WaitGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}

// goLifetimeAnalyzer flags goroutines in the serving stack that have no
// lifecycle plumbing: no context, no done channel, no WaitGroup, no
// channel whose close ends them. Such a goroutine cannot be cancelled or
// awaited, so server shutdown either leaks it or races it; every
// goroutine the batcher, load generator, and engine spawn must be
// joinable. Scoped to internal/server, internal/serving, and — since
// the kernels moved from per-call goroutine fan-out to a persistent
// worker pool — internal/tensor, whose long-lived pool workers must be
// retirable: they pass the done-channel exemption because each worker
// receives the generation's stop channel (chan struct{}) as an
// argument, and closing it is exactly how ensurePool retires a
// generation on GOMAXPROCS resize. internal/cluster joined the scope
// with the distributed pipeline: every worker/dispatcher goroutine
// (accept loops, per-connection readers, the compute loop) must be
// joinable through the done channel + WaitGroup teardown or a killed
// stage would leak readers blocked on dead sockets.
var goLifetimeAnalyzer = register(&Analyzer{
	Name: "go-lifetime",
	Doc:  "long-lived goroutines need ctx, a done channel, or a WaitGroup",
	Applies: func(path string) bool {
		switch path {
		case "edgebench/internal/server", "edgebench/internal/serving",
			"edgebench/internal/tensor", "edgebench/internal/cluster":
			return true
		}
		return false
	},
	Run: func(ctx *Context) {
		decls := funcDeclMap(ctx)
		ctx.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
			g := n.(*ast.GoStmt)
			for _, arg := range g.Call.Args {
				if t := ctx.typeOf(arg); isContextType(t) || isDoneChan(t) {
					return // lifecycle handed in explicitly
				}
			}
			body := goBody(ctx, decls, g)
			if body == nil {
				return // cross-package callee: cannot see its body
			}
			if !hasLifecyclePlumbing(ctx, body) {
				ctx.reportf(g.Pos(), "goroutine has no lifecycle plumbing (ctx, done channel, or WaitGroup); shutdown cannot cancel or await it")
			}
		})
	},
})

// wgAddAnalyzer flags WaitGroup.Add calls made inside the goroutine the
// Add is accounting for: the parent's Wait can run before the goroutine
// is scheduled, observe a zero counter, and return while work is still
// in flight. Add must happen-before the go statement.
var wgAddAnalyzer = register(&Analyzer{
	Name: "wg-add",
	Doc:  "WaitGroup.Add belongs before the go statement, not inside the goroutine",
	Run: func(ctx *Context) {
		decls := funcDeclMap(ctx)
		ctx.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
			g := n.(*ast.GoStmt)
			body := goBody(ctx, decls, g)
			if body == nil {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" || !isSyncNamed(ctx.typeOf(sel.X), "WaitGroup") {
					return true
				}
				ctx.reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine; Wait can observe the counter before this runs — move Add before the go statement")
				return true
			})
		})
	},
})

// hasErrorResult reports whether a call's result type includes error.
func hasErrorResult(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// isNamedType reports whether t (or its pointee) is the named type
// pkg.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// uncheckedExempt lists the callees whose dropped error is idiomatic:
// the fmt print family (errors only on broken writers, and the fallback
// would be... printing), and bytes.Buffer / strings.Builder methods,
// which are documented to never return a non-nil error.
func uncheckedExempt(ctx *Context, call *ast.CallExpr) bool {
	name, obj := calleeObject(ctx.pkg, call.Fun)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		t := ctx.typeOf(sel.X)
		if isNamedType(t, "bytes", "Buffer") || isNamedType(t, "strings", "Builder") {
			return true
		}
	}
	return false
}

// uncheckedErrorAnalyzer flags statement-position calls whose error
// result vanishes. A benchmark harness that drops an inference error
// reports the latency of a failure as if it were a success, which is
// worse than crashing — the characterization tables silently stop
// meaning anything. Deferred calls and `go` calls are exempt (there is
// no error path to return through), as are the fmt print family and
// never-failing writers; everything else must handle the error or
// assign it to _ to show the drop is deliberate.
var uncheckedErrorAnalyzer = register(&Analyzer{
	Name: "unchecked-error",
	Doc:  "no statement-position calls that silently drop an error result",
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
			stmt := n.(*ast.ExprStmt)
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return
			}
			t := ctx.typeOf(call)
			if t == nil || !hasErrorResult(t) || uncheckedExempt(ctx, call) {
				return
			}
			name, _ := calleeObject(ctx.pkg, call.Fun)
			if name == "" {
				name = "call"
			}
			ctx.reportf(call.Pos(), "%s returns an error that is silently dropped; handle it or assign to _ explicitly", name)
		})
	},
})

// objectPath resolves an expression to the object chain it names
// (x → [x]; x.Data → [x, Data]; &t.Field → [t, Field]); nil for
// anything the rule cannot prove (calls, indexing, arithmetic).
func objectPath(p *pkg, e ast.Expr) []types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.info.Uses[x]; obj != nil {
			return []types.Object{obj}
		}
	case *ast.SelectorExpr:
		base := objectPath(p, x.X)
		if base == nil {
			return nil
		}
		if obj := p.info.Uses[x.Sel]; obj != nil {
			return append(base, obj)
		}
	case *ast.ParenExpr:
		return objectPath(p, x.X)
	case *ast.StarExpr:
		return objectPath(p, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return objectPath(p, x.X)
		}
	}
	return nil
}

// pathsAlias reports whether two object paths name overlapping storage:
// equal paths are the same variable, and a path that extends the other
// (t vs t.Data) reaches through the same tensor.
func pathsAlias(a, b []types.Object) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intoAliasAnalyzer flags tensor *Into kernel calls whose dst argument
// provably aliases a source argument. The Into kernels document dst as
// exclusive output; a conv or matmul reading a source that is also its
// destination consumes half-written values and produces garbage that no
// shape check can catch. Only provable aliasing (same variable path) is
// flagged — runtime aliasing through slices is the Debug executor's
// assertNoAlias job.
var intoAliasAnalyzer = register(&Analyzer{
	Name: "into-alias",
	Doc:  "tensor *Into calls must not pass dst as a source argument",
	Run: func(ctx *Context) {
		ctx.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			name, obj := calleeObject(ctx.pkg, call.Fun)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != tensorPkg ||
				!strings.HasSuffix(name, "Into") || len(call.Args) < 2 {
				return
			}
			dst := objectPath(ctx.pkg, call.Args[0])
			if dst == nil {
				return
			}
			for _, src := range call.Args[1:] {
				sp := objectPath(ctx.pkg, src)
				if sp == nil {
					continue
				}
				if pathsAlias(dst, sp) {
					ctx.reportf(call.Pos(), "%s destination %s aliases source %s; the kernel would read its own half-written output",
						name, types.ExprString(call.Args[0]), types.ExprString(src))
					return
				}
			}
		})
	},
})
