package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Analyzer is one registered rule: a named check that runs over a
// type-checked package through a shared Inspector. Analyzers register
// themselves from package-level variables (rules.go, concurrency.go), so
// adding a rule is one declaration — the driver, the CLI's -enable /
// -disable flags, and the rule listing all pick it up from the registry.
type Analyzer struct {
	// Name is the stable rule ID findings and ignore directives use.
	Name string
	// Doc is the one-line description `-rules` prints.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(importPath string) bool
	// Run performs the check, reporting through ctx.reportf.
	Run func(ctx *Context)
}

// analyzers is the rule registry, in registration order.
var analyzers []*Analyzer

// register adds an analyzer to the registry; called from package-level
// variable initializers only, so the registry is complete before main.
func register(a *Analyzer) *Analyzer {
	for _, b := range analyzers {
		if b.Name == a.Name {
			panic("edgelint: duplicate analyzer " + a.Name)
		}
	}
	analyzers = append(analyzers, a)
	return a
}

// analyzerNames returns every registered rule ID, sorted.
func analyzerNames() []string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Inspector is the shared traversal over a package's files: the AST is
// flattened once in preorder and indexed by concrete node type, so N
// analyzers subscribing to node kinds cost one walk plus N index scans
// instead of N full walks.
type Inspector struct {
	nodes  []ast.Node
	byType map[reflect.Type][]int
}

func newInspector(files []*ast.File) *Inspector {
	in := &Inspector{byType: map[reflect.Type][]int{}}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			t := reflect.TypeOf(n)
			in.byType[t] = append(in.byType[t], len(in.nodes))
			in.nodes = append(in.nodes, n)
			return true
		})
	}
	return in
}

// Preorder calls f for every node whose concrete type matches one of the
// prototypes (e.g. (*ast.CallExpr)(nil)), in source order across the
// package's files. With no prototypes it visits every node.
func (in *Inspector) Preorder(prototypes []ast.Node, f func(ast.Node)) {
	if len(prototypes) == 0 {
		for _, n := range in.nodes {
			f(n)
		}
		return
	}
	var idx []int
	for _, p := range prototypes {
		idx = append(idx, in.byType[reflect.TypeOf(p)]...)
	}
	sort.Ints(idx)
	for _, i := range idx {
		f(in.nodes[i])
	}
}

// Context is one analyzer's view of one package: the type-checked
// package, the shared inspector, and the reporting sink. Helper
// accessors keep rule bodies free of p.info plumbing.
type Context struct {
	pkg      *pkg
	insp     *Inspector
	analyzer *Analyzer
	findings []finding
}

// reportf records one finding at pos under the running analyzer's rule
// ID.
func (c *Context) reportf(pos token.Pos, format string, args ...any) {
	c.findings = append(c.findings, finding{
		pos:  c.pkg.fset.Position(pos),
		rule: c.analyzer.Name,
		msg:  fmt.Sprintf(format, args...),
	})
}

// files returns the package's parsed files, for analyzers that need
// declaration or comment structure rather than node streams.
func (c *Context) files() []*ast.File { return c.pkg.files }

// typeOf resolves an expression's type (nil when unknown).
func (c *Context) typeOf(e ast.Expr) types.Type { return c.pkg.info.TypeOf(e) }

// objectOf resolves an identifier's object via Uses then Defs.
func (c *Context) objectOf(id *ast.Ident) types.Object {
	if obj := c.pkg.info.Uses[id]; obj != nil {
		return obj
	}
	return c.pkg.info.Defs[id]
}

// Preorder forwards to the shared inspector.
func (c *Context) Preorder(prototypes []ast.Node, f func(ast.Node)) {
	c.insp.Preorder(prototypes, f)
}

// lintPackage runs every registered analyzer over one type-checked
// package — the all-rules entry point the self-lint test uses.
func lintPackage(p *pkg) []finding { return lintPackageRules(p, nil) }

// lintPackageRules runs the enabled analyzers (all when enabled is nil)
// over one package, filters findings through edgelint:ignore directives,
// and returns them sorted by position then rule.
func lintPackageRules(p *pkg, enabled map[string]bool) []finding {
	insp := newInspector(p.files)
	var fs []finding
	for _, a := range analyzers {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		if a.Applies != nil && !a.Applies(p.path) {
			continue
		}
		ctx := &Context{pkg: p, insp: insp, analyzer: a}
		a.Run(ctx)
		fs = append(fs, ctx.findings...)
	}
	fs = filterIgnored(p, fs)
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.rule < b.rule
	})
	return fs
}

// ruleSet parses the -enable/-disable flag values into the enabled-rule
// set (nil means all rules). Unknown rule names are an error so a typo
// cannot silently disable a gate.
func ruleSet(enable, disable string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	parse := func(list string) ([]string, error) {
		if strings.TrimSpace(list) == "" {
			return nil, nil
		}
		var out []string
		for _, r := range strings.Split(list, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !known[r] {
				return nil, fmt.Errorf("unknown rule %q (known: %s)", r, strings.Join(analyzerNames(), ", "))
			}
			out = append(out, r)
		}
		return out, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	if on == nil && off == nil {
		return nil, nil
	}
	enabled := map[string]bool{}
	if on == nil {
		for name := range known {
			enabled[name] = true
		}
	} else {
		for _, r := range on {
			enabled[r] = true
		}
	}
	for _, r := range off {
		delete(enabled, r)
	}
	return enabled, nil
}

// filterIgnored drops findings suppressed by an "edgelint:ignore <rule>"
// comment on the finding's line or the line directly above it.
func filterIgnored(p *pkg, fs []finding) []finding {
	ignored := map[string]map[int]map[string]bool{} // file -> line -> rules
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimLeft(c.Text, "/* ")
				rest, ok := strings.CutPrefix(text, "edgelint:ignore")
				if !ok {
					continue
				}
				pos := p.fset.Position(c.Pos())
				m := ignored[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					ignored[pos.Filename] = m
				}
				for _, rule := range strings.Fields(rest) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if m[line] == nil {
							m[line] = map[string]bool{}
						}
						m[line][rule] = true
					}
				}
			}
		}
	}
	var out []finding
	for _, f := range fs {
		if ignored[f.pos.Filename][f.pos.Line][f.rule] {
			continue
		}
		out = append(out, f)
	}
	return out
}
