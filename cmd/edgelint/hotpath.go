// Hot-path rule family: checks that reason about reachability from the
// inference entry points. The pre-pack layer moved panel packing to
// session open precisely so the per-request path never pays it again;
// these rules keep that boundary from eroding.
package main

import (
	"go/ast"
	"go/types"
)

// hotPackBuilders are the ahead-of-time panel-packing constructors in
// internal/tensor. Each one copies and reorders an entire weight
// operand; on the request path that undoes the pre-pack optimization
// (the work returns, per call, hidden behind a cached-looking API).
var hotPackBuilders = map[string]bool{
	"PackConvWeights":   true,
	"PackQConvWeights":  true,
	"PackQDenseWeights": true,
	"PackGemmB":         true,
	"PackQGemmB":        true,
}

// hotPackRoots name the per-request entry points: any function or
// method with one of these names is treated as the start of a hot
// path. Session-open surfaces (NewEngine, configure, Connect) are
// deliberately absent — that is where packing belongs.
var hotPackRoots = map[string]bool{
	"Infer":      true,
	"InferBatch": true,
	"Run":        true,
	"RunBatch":   true,
	"RunValues":  true,
}

// isPackBuilder classifies a call as an AOT panel-pack constructor:
// one of the tensor-package builders, or the graph-package sweep that
// invokes them zoo-wide.
func isPackBuilder(ctx *Context, call *ast.CallExpr) (string, bool) {
	name, obj := calleeObject(ctx.pkg, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case tensorPkg:
		if hotPackBuilders[name] {
			return "tensor." + name, true
		}
	case graphPkg:
		if name == "PrepackWeights" {
			return "graph.PrepackWeights", true
		}
	}
	return "", false
}

// hotPackAnalyzer flags panel-pack constructor calls reachable from an
// inference entry point within the same package. Packing a weight
// operand is session-open work: it allocates and reorders the full
// operand, so a pack call on the Infer/Run path re-pays per request
// what the pre-pack pass paid once. The reachability walk is static
// and same-package only (cross-package callees are invisible, so the
// rule under-approximates rather than guesses); function literals
// inside a reachable body — worker goroutines included — are scanned
// with it.
var hotPackAnalyzer = register(&Analyzer{
	Name: "hot-pack",
	Doc:  "no ahead-of-time panel packing reachable from inference entry points",
	Applies: func(path string) bool {
		switch path {
		case graphPkg, "edgebench/internal/serving",
			"edgebench/internal/cluster", "edgebench/internal/server":
			return true
		}
		return false
	},
	Run: func(ctx *Context) {
		decls := funcDeclMap(ctx)
		edges := map[types.Object][]types.Object{}
		for obj, fd := range decls {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, callee := calleeObject(ctx.pkg, call.Fun); callee != nil {
					if _, local := decls[callee]; local {
						edges[obj] = append(edges[obj], callee)
					}
				}
				return true
			})
		}
		reachable := map[types.Object]bool{}
		var queue []types.Object
		for obj, fd := range decls {
			if hotPackRoots[fd.Name.Name] {
				reachable[obj] = true
				queue = append(queue, obj)
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, callee := range edges[cur] {
				if !reachable[callee] {
					reachable[callee] = true
					queue = append(queue, callee)
				}
			}
		}
		for obj := range reachable {
			fd := decls[obj]
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, hit := isPackBuilder(ctx, call); hit {
					ctx.reportf(call.Pos(), "%s called in %s, which is reachable from an inference entry point; panel packing is session-open work — pre-pack once and dispatch on the cached panels",
						name, fd.Name.Name)
				}
				return true
			})
		}
	},
})
