// Command partition runs the Neurosurgeon-style collaborative-inference
// planner: it evaluates every legal split of a model between an edge
// device and a remote helper across a network link, and prints the
// optimal placement.
//
// Usage:
//
//	partition -model VGG16 -edge RPi3 -remote GTXTitanX -link wifi
//	partition -model AlexNet -edge RPi3 -link lte -verbose
package main

import (
	"flag"
	"fmt"
	"os"

	"edgebench/internal/partition"
)

func main() {
	modelName := flag.String("model", "VGG16", "model to partition")
	edge := flag.String("edge", "RPi3", "edge device")
	edgeFw := flag.String("edge-framework", "PyTorch", "framework on the edge")
	remote := flag.String("remote", "GTXTitanX", "remote device")
	remoteFw := flag.String("remote-framework", "PyTorch", "framework on the remote")
	linkName := flag.String("link", "wifi", "network link: wifi, lte, ethernet")
	verbose := flag.Bool("verbose", false, "print every evaluated placement")
	flag.Parse()

	links := map[string]partition.Link{
		"wifi": partition.WiFi, "lte": partition.LTE, "ethernet": partition.Ethernet,
	}
	link, ok := links[*linkName]
	if !ok {
		fmt.Fprintf(os.Stderr, "partition: unknown link %q (wifi|lte|ethernet)\n", *linkName)
		os.Exit(2)
	}

	plan, err := partition.Neurosurgeon(*modelName, *edge, *edgeFw, *remote, *remoteFw, link)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %s(%s) <-%s-> %s(%s)\n\n",
		plan.Model, plan.EdgeDev, *edgeFw, link.Name, plan.Remote, *remoteFw)
	describe := func(tag string, p partition.Placement) {
		cut := p.CutAfter
		switch cut {
		case "":
			cut = "all-cloud"
		case "(all)":
			cut = "all-edge"
		}
		fmt.Printf("%-10s %-28s edge %8.1f ms + xfer %8.1f ms (%.0f KB) + remote %8.1f ms = %8.1f ms\n",
			tag, cut, p.EdgeSec*1e3, p.TransferSec*1e3, p.TransferBytes/1024, p.RemoteSec*1e3, p.TotalSec*1e3)
	}
	describe("all-edge", plan.AllEdge)
	describe("all-cloud", plan.AllCloud)
	describe("BEST", plan.Best)

	if *verbose {
		fmt.Println("\nall evaluated placements:")
		for _, p := range plan.Evaluated {
			describe("", p)
		}
	}
}
