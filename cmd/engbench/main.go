// Command engbench benchmarks the numeric execution engine — the
// blocked GEMM kernels, the pooled (static-memory-planner) executor,
// and the branch-parallel scheduler — and writes the measurements to
// BENCH_engine.json so perf regressions are diffable across commits.
//
// Three groups:
//
//   - matmul: naive ijk baseline vs the cache-blocked serial kernel vs
//     the row-sharded parallel kernel, at a large square size.
//   - conv2d: im2col+GEMM convolution, allocating vs pooled-scratch.
//   - forward: a full MobileNet-class model forward pass under the
//     executor's four modes (serial, parallel, pooled, pooled+parallel),
//     with allocs/op capturing the static memory planner's effect.
//
// Speedups are computed from the host's actual timings; on a
// single-core host the parallel numbers legitimately match serial.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

type result struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	GemmDim    int                `json:"gemm_dim"`
	Model      string             `json:"model"`
	Results    []result           `json:"results"`
	Summary    map[string]float64 `json:"summary"`
}

func bench(name string, rep *report, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	out := result{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	fmt.Printf("%-24s %12d ns/op %10d allocs/op %12d B/op\n",
		name, out.NsPerOp, out.AllocsPerOp, out.BytesPerOp)
	rep.Results = append(rep.Results, out)
	return out
}

func naiveMatMul(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

func fill(t *tensor.Tensor, seed int) {
	for i := range t.Data {
		t.Data[i] = float32((i*2654435761+seed)%1024)/512 - 1
	}
}

func main() {
	dim := flag.Int("dim", 512, "square GEMM dimension for the matmul group")
	modelName := flag.String("model", "MobileNet-v2", "zoo model for the forward group")
	benchtime := flag.String("benchtime", "300ms", "per-benchmark measurement budget")
	out := flag.String("o", "BENCH_engine.json", "output JSON path")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatal(err)
	}

	rep := &report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GemmDim:    *dim,
		Model:      *modelName,
		Summary:    map[string]float64{},
	}

	// --- matmul group -------------------------------------------------
	d := *dim
	a, b := tensor.New(d, d), tensor.New(d, d)
	fill(a, 1)
	fill(b, 2)
	dst := make([]float32, d*d)
	naive := bench("matmul/naive", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			naiveMatMul(dst, a.Data, b.Data, d, d, d)
		}
	})
	blocked := bench("matmul/blocked", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.MatMulSerial(a, b)
		}
	})
	par := bench("matmul/parallel", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.MatMulParallel(a, b)
		}
	})
	rep.Summary["matmul_blocked_vs_naive_speedup"] = ratio(naive.NsPerOp, blocked.NsPerOp)
	rep.Summary["matmul_parallel_vs_naive_speedup"] = ratio(naive.NsPerOp, par.NsPerOp)
	rep.Summary["matmul_parallel_vs_blocked_speedup"] = ratio(blocked.NsPerOp, par.NsPerOp)

	// --- conv2d group -------------------------------------------------
	in := tensor.New(32, 56, 56)
	w := tensor.New(64, 32, 3, 3)
	fill(in, 3)
	fill(w, 4)
	bias := make([]float32, 64)
	spec := tensor.Conv2DSpec{Stride: 1, Pad: 1}
	direct := bench("conv2d/direct", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2D(in, w, bias, spec)
		}
	})
	alloc := bench("conv2d/gemm", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DGEMM(in, w, bias, spec)
		}
	})
	scratch := tensor.NewPool()
	cdst := tensor.New(64, 56, 56)
	tensor.Conv2DGEMMInto(cdst, in, w, bias, spec, scratch) // warm the scratch arena
	pooled := bench("conv2d/gemm-pooled", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DGEMMInto(cdst, in, w, bias, spec, scratch)
		}
	})
	rep.Summary["conv2d_gemm_vs_direct_speedup"] = ratio(direct.NsPerOp, pooled.NsPerOp)
	rep.Summary["conv2d_pooled_alloc_reduction"] = reduction(alloc.AllocsPerOp, pooled.AllocsPerOp)

	// --- qgemm group: the real-int8 kernel vs the blocked FP32 kernel.
	// Same pinned dim as the matmul group; the int8 kernel must be
	// strictly faster here (enforced below) or the quantized execution
	// path has regressed into marketing.
	qa, qb := make([]int8, d*d), make([]int8, d*d)
	for i := range qa {
		qa[i] = int8(i%255 - 127)
		qb[i] = int8((i*7)%255 - 127)
	}
	qdst := make([]int32, d*d)
	qserial := bench("qgemm/int8-serial", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.QGEMMSerial(qdst, qa, qb, d, d, d)
		}
	})
	bench("qgemm/int8-parallel", rep, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.QGEMM(qdst, qa, qb, d, d, d)
		}
	})
	rep.Summary["qgemm_int8_vs_fp32_blocked_speedup"] = ratio(blocked.NsPerOp, qserial.NsPerOp)

	// --- forward group ------------------------------------------------
	spec2, ok := model.Get(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	g := spec2.Build(nn.Options{Materialize: true, Seed: 11})
	input := tensor.New(g.Input.OutShape...)
	fill(input, 5)
	forward := func(ex *graph.Executor, fg *graph.Graph) func(b *testing.B) {
		return func(bb *testing.B) {
			if _, err := ex.Run(fg, input); err != nil { // warmup: plan + arena
				bb.Fatal(err)
			}
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				if _, err := ex.Run(fg, input); err != nil {
					bb.Fatal(err)
				}
			}
		}
	}
	serial := bench("forward/serial", rep, forward(&graph.Executor{}, g))
	bench("forward/parallel", rep, forward(&graph.Executor{Parallel: true}, g))
	fpool := bench("forward/pooled", rep, forward(&graph.Executor{Pooled: true}, g))
	both := bench("forward/pooled-parallel", rep, forward(&graph.Executor{Pooled: true, Parallel: true}, g))
	rep.Summary["forward_pooled_alloc_reduction"] = reduction(serial.AllocsPerOp, fpool.AllocsPerOp)
	rep.Summary["forward_pooled_parallel_speedup"] = ratio(serial.NsPerOp, both.NsPerOp)

	// Whole-model quantized forward: the same graph through QuantizeINT8,
	// so dense convs and dense layers run the int8 kernels and the rest
	// falls back to FP32.
	qg := g.Clone()
	graph.QuantizeINT8(qg)
	qfwd := bench("forward/int8-pooled", rep, forward(&graph.Executor{Pooled: true}, qg))
	rep.Summary["forward_int8_vs_fp32_speedup"] = ratio(fpool.NsPerOp, qfwd.NsPerOp)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGOMAXPROCS=%d  blocked GEMM %.2fx vs naive, int8 GEMM %.2fx vs blocked FP32, int8 forward %.2fx vs FP32, pooled forward cuts allocs/op by %.1f%%\nwrote %s\n",
		rep.GoMaxProcs,
		rep.Summary["matmul_blocked_vs_naive_speedup"],
		rep.Summary["qgemm_int8_vs_fp32_blocked_speedup"],
		rep.Summary["forward_int8_vs_fp32_speedup"],
		100*rep.Summary["forward_pooled_alloc_reduction"],
		*out)

	// Regression guard (make bench's gate): at the pinned benchmark dim
	// the int8 GEMM must be strictly faster than the blocked FP32 GEMM,
	// and the quantized whole-model forward must beat its FP32 twin.
	if *dim == 512 && qserial.NsPerOp >= blocked.NsPerOp {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: int8 GEMM %d ns/op is not below blocked FP32 %d ns/op at dim %d\n",
			qserial.NsPerOp, blocked.NsPerOp, *dim)
		os.Exit(1)
	}
	if qfwd.NsPerOp >= fpool.NsPerOp {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: int8 forward %d ns/op is not below FP32 forward %d ns/op for %s\n",
			qfwd.NsPerOp, fpool.NsPerOp, *modelName)
		os.Exit(1)
	}
}

// ratio returns before/after as a speedup factor (guarding div-by-zero).
func ratio(before, after int64) float64 {
	if after == 0 {
		return 0
	}
	return float64(before) / float64(after)
}

// reduction returns the fractional drop from before to after allocs.
func reduction(before, after int64) float64 {
	if before == 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}
