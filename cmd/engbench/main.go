// Command engbench benchmarks the numeric execution engine — the
// blocked GEMM kernels, the pooled (static-memory-planner) executor,
// and the branch-parallel scheduler — and writes the measurements to
// BENCH_engine.json so perf regressions are diffable across commits.
//
// Four groups:
//
//   - matmul: naive ijk baseline vs the cache-blocked serial kernel vs
//     the pool-sharded parallel kernel, at a large square size.
//   - conv2d: im2col+GEMM convolution, allocating vs pooled-scratch.
//   - forward: a full MobileNet-class model forward pass under the
//     executor's four modes (serial, parallel, pooled, pooled+parallel),
//     with allocs/op capturing the static memory planner's effect.
//   - prepack: the same model with ahead-of-time packed weight panels
//     (the session-open pre-pack pass) vs the unpacked pooled forward.
//   - serving: 8 frames through a serving engine, sequentially vs
//     batch-folded InferBatch at batch 2/4/8 — the batch curve.
//   - scaling: the -procs sweep re-times the blocked vs parallel GEMM
//     and the pooled vs pooled-parallel forward pass at each GOMAXPROCS
//     setting (resizing the persistent kernel worker pool in-process),
//     recording the intra-op scaling curve the ISSUE's tentpole is
//     about.
//
// The headline groups run at the host's full width: GOMAXPROCS is
// pinned to NumCPU at startup, so p=1 appears only as a swept point in
// the scaling group, never as an accidental headline configuration.
//
// Speedups are computed from the host's actual timings. The scaling
// regression gate (parallel beats serial) only enforces at swept points
// with 4 <= p <= NumCPU: below that the pool legitimately cannot win,
// and points above the physical core count oversubscribe. The
// pooled-conv, pre-pack, and batch-fold gates likewise enforce only on
// hosts with >= 4 CPUs. On smaller hosts every waived gate says so
// loudly; the curves are still recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

type result struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// scalePoint is one GOMAXPROCS setting's measurements in the scaling
// sweep.
type scalePoint struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Summary    map[string]float64 `json:"summary"`
}

type report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	GemmDim    int                `json:"gemm_dim"`
	Model      string             `json:"model"`
	Results    []result           `json:"results"`
	Summary    map[string]float64 `json:"summary"`
	Scaling    []scalePoint       `json:"scaling"`
}

func bench(name string, results *[]result, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	out := result{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	fmt.Printf("%-24s %12d ns/op %10d allocs/op %12d B/op\n",
		name, out.NsPerOp, out.AllocsPerOp, out.BytesPerOp)
	*results = append(*results, out)
	return out
}

// benchMin measures fn three times and keeps the fastest run. The
// epilogue gates compare timings a few percent apart; on small shared
// hosts a single run swings more than that, and the minimum is the
// standard noise-robust estimator for "how fast can this code go".
func benchMin(name string, results *[]result, fn func(b *testing.B)) result {
	var best result
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		if i == 0 || r.NsPerOp() < best.NsPerOp {
			best = result{
				Name:        name,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
		}
	}
	fmt.Printf("%-24s %12d ns/op %10d allocs/op %12d B/op  (min of 3)\n",
		best.Name, best.NsPerOp, best.AllocsPerOp, best.BytesPerOp)
	*results = append(*results, best)
	return best
}

// parseProcs parses the -procs flag ("1,2,4,8") into a sorted-as-given
// list of positive ints; empty string means no sweep.
func parseProcs(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ps []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", f)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

func naiveMatMul(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

func fill(t *tensor.Tensor, seed int) {
	for i := range t.Data {
		t.Data[i] = float32((i*2654435761+seed)%1024)/512 - 1
	}
}

func main() {
	dim := flag.Int("dim", 512, "square GEMM dimension for the matmul group")
	modelName := flag.String("model", "MobileNet-v2", "zoo model for the forward group")
	benchtime := flag.String("benchtime", "300ms", "per-benchmark measurement budget")
	procsFlag := flag.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS sweep for the scaling group (empty disables)")
	out := flag.String("o", "BENCH_engine.json", "output JSON path")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatal(err)
	}
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		log.Fatal(err)
	}

	// Headline groups describe the machine at full width, not whatever
	// GOMAXPROCS the caller happened to inherit; p=1 is a scaling-sweep
	// point only.
	runtime.GOMAXPROCS(runtime.NumCPU())

	rep := &report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GemmDim:    *dim,
		Model:      *modelName,
		Summary:    map[string]float64{},
	}

	// --- matmul group -------------------------------------------------
	d := *dim
	a, b := tensor.New(d, d), tensor.New(d, d)
	fill(a, 1)
	fill(b, 2)
	dst := make([]float32, d*d)
	naive := bench("matmul/naive", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			naiveMatMul(dst, a.Data, b.Data, d, d, d)
		}
	})
	blocked := bench("matmul/blocked", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.MatMulSerial(a, b)
		}
	})
	par := bench("matmul/parallel", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.MatMulParallel(a, b)
		}
	})
	rep.Summary["matmul_blocked_vs_naive_speedup"] = ratio(naive.NsPerOp, blocked.NsPerOp)
	rep.Summary["matmul_parallel_vs_naive_speedup"] = ratio(naive.NsPerOp, par.NsPerOp)
	rep.Summary["matmul_parallel_vs_blocked_speedup"] = ratio(blocked.NsPerOp, par.NsPerOp)

	// --- conv2d group -------------------------------------------------
	in := tensor.New(32, 56, 56)
	w := tensor.New(64, 32, 3, 3)
	fill(in, 3)
	fill(w, 4)
	bias := make([]float32, 64)
	spec := tensor.Conv2DSpec{Stride: 1, Pad: 1}
	// The whole group runs min-of-3: the pooled-vs-allocating gate below
	// compares two timings a few percent apart, and single runs on small
	// shared hosts swing more than that (the historical 36.0ms-pooled vs
	// 34.3ms-allocating "regression" was exactly such a swing).
	direct := benchMin("conv2d/direct", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2D(in, w, bias, spec)
		}
	})
	alloc := benchMin("conv2d/gemm", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DGEMM(in, w, bias, spec)
		}
	})
	scratch := tensor.NewPool()
	cdst := tensor.New(64, 56, 56)
	tensor.Conv2DGEMMInto(cdst, in, w, bias, spec, scratch) // warm the scratch arena
	pooled := benchMin("conv2d/gemm-pooled", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DGEMMInto(cdst, in, w, bias, spec, scratch)
		}
	})
	rep.Summary["conv2d_gemm_vs_direct_speedup"] = ratio(direct.NsPerOp, pooled.NsPerOp)
	rep.Summary["conv2d_pooled_vs_gemm_speedup"] = ratio(alloc.NsPerOp, pooled.NsPerOp)
	rep.Summary["conv2d_pooled_alloc_reduction"] = reduction(alloc.AllocsPerOp, pooled.AllocsPerOp)

	// --- epilogue group: folded vs two-sweep fused kernels. The direct
	// and depthwise convolutions apply the absorbed-BN affine and the
	// activation inside the row loop while each output row is cache-hot;
	// the reference runs the same compute kernel then sweeps the whole
	// output twice via Epilogue.ApplyInto. Same floats either way (the
	// fold is bit-exact); the delta is pure memory traffic, so the
	// depthwise case — near-zero arithmetic intensity — is where the
	// eliminated sweeps must show.
	ein := tensor.New(64, 128, 128)
	edw := tensor.New(64, 3, 3)
	fill(ein, 6)
	fill(edw, 7)
	ebias := make([]float32, 64)
	epi := tensor.Epilogue{
		Scale: make([]float32, 64),
		Shift: make([]float32, 64),
		Act:   tensor.ActReLU6,
	}
	for i := range epi.Scale {
		epi.Scale[i] = 1 + float32(i%7)/16
		epi.Shift[i] = float32(i%5)/8 - 0.25
	}
	edst := tensor.New(64, 128, 128)
	dwSweep := benchMin("epilogue/dw-sweep", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.DepthwiseConv2DInto(edst, ein, edw, ebias, spec)
			epi.ApplyInto(edst)
		}
	})
	dwFold := benchMin("epilogue/dw-folded", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.DepthwiseConv2DFusedInto(edst, ein, edw, ebias, spec, epi)
		}
	})
	// The dense-conv comparison reuses the conv2d group's 32→64 @ 56×56
	// layer (the epilogue's 64 channels match its output).
	convSweep := benchMin("epilogue/conv-sweep", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DAutoInto(cdst, in, w, bias, spec)
			epi.ApplyInto(cdst)
		}
	})
	convFold := benchMin("epilogue/conv-folded", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.Conv2DFusedInto(cdst, in, w, bias, spec, epi)
		}
	})
	rep.Summary["epilogue_dw_folded_vs_sweep_speedup"] = ratio(dwSweep.NsPerOp, dwFold.NsPerOp)
	rep.Summary["epilogue_conv_folded_vs_sweep_speedup"] = ratio(convSweep.NsPerOp, convFold.NsPerOp)

	// --- qgemm group: the real-int8 kernel vs the blocked FP32 kernel.
	// Same pinned dim as the matmul group; the int8 kernel must be
	// strictly faster here (enforced below) or the quantized execution
	// path has regressed into marketing.
	qa, qb := make([]int8, d*d), make([]int8, d*d)
	for i := range qa {
		qa[i] = int8(i%255 - 127)
		qb[i] = int8((i*7)%255 - 127)
	}
	qdst := make([]int32, d*d)
	qserial := bench("qgemm/int8-serial", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.QGEMMSerial(qdst, qa, qb, d, d, d)
		}
	})
	bench("qgemm/int8-parallel", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			tensor.QGEMM(qdst, qa, qb, d, d, d)
		}
	})
	rep.Summary["qgemm_int8_vs_fp32_blocked_speedup"] = ratio(blocked.NsPerOp, qserial.NsPerOp)

	// --- forward group ------------------------------------------------
	spec2, ok := model.Get(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	g := spec2.Build(nn.Options{Materialize: true, Seed: 11})
	input := tensor.New(g.Input.OutShape...)
	fill(input, 5)
	forward := func(ex *graph.Executor, fg *graph.Graph) func(b *testing.B) {
		return func(bb *testing.B) {
			if _, err := ex.Run(fg, input); err != nil { // warmup: plan + arena
				bb.Fatal(err)
			}
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				if _, err := ex.Run(fg, input); err != nil {
					bb.Fatal(err)
				}
			}
		}
	}
	serial := bench("forward/serial", &rep.Results, forward(&graph.Executor{}, g))
	bench("forward/parallel", &rep.Results, forward(&graph.Executor{Parallel: true}, g))
	// Pooled feeds three regression gates (int8, fused, prepack), so it
	// gets the noise-robust estimator.
	fpool := benchMin("forward/pooled", &rep.Results, forward(&graph.Executor{Pooled: true}, g))
	both := bench("forward/pooled-parallel", &rep.Results, forward(&graph.Executor{Pooled: true, Parallel: true}, g))
	rep.Summary["forward_pooled_alloc_reduction"] = reduction(serial.AllocsPerOp, fpool.AllocsPerOp)
	rep.Summary["forward_pooled_parallel_speedup"] = ratio(serial.NsPerOp, both.NsPerOp)

	// Whole-model quantized forward: the same graph through QuantizeINT8,
	// so dense convs and dense layers run the int8 kernels and the rest
	// falls back to FP32.
	qg := g.Clone()
	opt.QuantizeINT8(qg)
	qfwd := benchMin("forward/int8-pooled", &rep.Results, forward(&graph.Executor{Pooled: true}, qg))
	rep.Summary["forward_int8_vs_fp32_speedup"] = ratio(fpool.NsPerOp, qfwd.NsPerOp)

	// Pattern-fused forward: the same graph through the O2 pass pipeline,
	// so Conv→BN→act chains collapse into single fused-kernel dispatches
	// (BN as a per-channel epilogue — bit-identical to the unfused chain).
	fg := g.Clone()
	fg.Frozen = false
	orep, err := opt.Optimize(fg, opt.O2)
	if err != nil {
		log.Fatalf("engbench: O2 optimization of %s failed: %v", *modelName, err)
	}
	fmt.Printf("%-24s %s\n", "opt/O2", orep)
	fused := benchMin("forward/fused", &rep.Results, forward(&graph.Executor{Pooled: true}, fg))
	rep.Summary["forward_fused_vs_fp32_speedup"] = ratio(fpool.NsPerOp, fused.NsPerOp)

	// --- prepack group ------------------------------------------------
	// Session-open weight pre-packing: every GEMM-executable operand is
	// packed into the blocked-panel layout once, and the forward pass
	// dispatches on the cached panels (prepacked GEMM lowering) instead
	// of the per-call Auto lowering.
	pg := g.Clone()
	npk := graph.PrepackWeights(pg)
	fmt.Printf("%-24s %d weight operands packed ahead of time\n", "prepack", npk)
	prepacked := benchMin("forward/prepacked", &rep.Results, forward(&graph.Executor{Pooled: true}, pg))
	rep.Summary["forward_prepacked_vs_unpacked_speedup"] = ratio(fpool.NsPerOp, prepacked.NsPerOp)

	// --- serving batch group ------------------------------------------
	// 8 frames through a serving engine (which pre-packs at session
	// open): one at a time vs batch-folded InferBatch at 2/4/8. Every
	// point processes the same 8 frames, so ns/op compares directly and
	// the batch sizes trace the batch-fold curve.
	sg := g.Clone()
	eng, err := serving.NewEngine(sg, 0)
	if err != nil {
		log.Fatalf("engbench: serving engine for %s: %v", *modelName, err)
	}
	frames := make([]*tensor.Tensor, 8)
	for i := range frames {
		frames[i] = tensor.New(g.Input.OutShape...)
		fill(frames[i], 20+i)
	}
	if _, err := eng.InferBatch(frames); err != nil { // warm plans + arenas
		log.Fatalf("engbench: warmup InferBatch: %v", err)
	}
	seq8 := benchMin("serving/sequential-8", &rep.Results, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			for _, f := range frames {
				if _, err := eng.Infer(f); err != nil {
					bb.Fatal(err)
				}
			}
		}
	})
	var batch8 result
	for _, bsz := range []int{2, 4, 8} {
		r := benchMin(fmt.Sprintf("serving/batch-%d", bsz), &rep.Results, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				for lo := 0; lo < len(frames); lo += bsz {
					if _, err := eng.InferBatch(frames[lo : lo+bsz]); err != nil {
						bb.Fatal(err)
					}
				}
			}
		})
		rep.Summary[fmt.Sprintf("serving_batch%d_vs_sequential_speedup", bsz)] = ratio(seq8.NsPerOp, r.NsPerOp)
		if bsz == 8 {
			batch8 = r
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("engbench: engine close: %v", err)
	}

	// --- scaling sweep ------------------------------------------------
	// Re-time the parallel-vs-serial pairs at each GOMAXPROCS setting.
	// runtime.GOMAXPROCS(p) takes effect immediately and the tensor
	// worker pool resizes itself to match on its next dispatch, so the
	// whole curve comes from one process. Executors are rebuilt per
	// point so cached plans or level partitions never leak timing
	// between settings.
	ambient := runtime.GOMAXPROCS(0)
	for _, p := range procs {
		fmt.Printf("\n--- scaling GOMAXPROCS=%d ---\n", p)
		runtime.GOMAXPROCS(p)
		sp := scalePoint{GoMaxProcs: p, Summary: map[string]float64{}}
		tensor.MatMulParallel(a, b) // warm the resized pool
		sblk := bench("matmul/blocked", &sp.Results, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				tensor.MatMulSerial(a, b)
			}
		})
		spar := bench("matmul/parallel", &sp.Results, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				tensor.MatMulParallel(a, b)
			}
		})
		spool := bench("forward/pooled", &sp.Results, forward(&graph.Executor{Pooled: true}, g))
		sboth := bench("forward/pooled-parallel", &sp.Results, forward(&graph.Executor{Pooled: true, Parallel: true}, g))
		sp.Summary["matmul_parallel_vs_blocked_speedup"] = ratio(sblk.NsPerOp, spar.NsPerOp)
		sp.Summary["forward_pooled_parallel_vs_pooled_speedup"] = ratio(spool.NsPerOp, sboth.NsPerOp)
		rep.Scaling = append(rep.Scaling, sp)
	}
	runtime.GOMAXPROCS(ambient)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGOMAXPROCS=%d  blocked GEMM %.2fx vs naive, int8 GEMM %.2fx vs blocked FP32, int8 forward %.2fx vs FP32, pooled forward cuts allocs/op by %.1f%%\nwrote %s\n",
		rep.GoMaxProcs,
		rep.Summary["matmul_blocked_vs_naive_speedup"],
		rep.Summary["qgemm_int8_vs_fp32_blocked_speedup"],
		rep.Summary["forward_int8_vs_fp32_speedup"],
		100*rep.Summary["forward_pooled_alloc_reduction"],
		*out)

	// Regression guard (make bench's gate): at the pinned benchmark dim
	// the int8 GEMM must be strictly faster than the blocked FP32 GEMM,
	// and the quantized whole-model forward must beat its FP32 twin.
	if *dim == 512 && qserial.NsPerOp >= blocked.NsPerOp {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: int8 GEMM %d ns/op is not below blocked FP32 %d ns/op at dim %d\n",
			qserial.NsPerOp, blocked.NsPerOp, *dim)
		os.Exit(1)
	}
	if qfwd.NsPerOp >= fpool.NsPerOp {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: int8 forward %d ns/op is not below FP32 forward %d ns/op for %s\n",
			qfwd.NsPerOp, fpool.NsPerOp, *modelName)
		os.Exit(1)
	}
	// Fused gate: the O2-fused forward pass must beat the unfused pooled
	// one — fewer dispatches, no BN/activation intermediates — or pattern
	// fusion has regressed into a node-count cosmetic.
	if fused.NsPerOp >= fpool.NsPerOp {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: fused forward %d ns/op is not below unfused FP32 forward %d ns/op for %s\n",
			fused.NsPerOp, fpool.NsPerOp, *modelName)
		os.Exit(1)
	}

	// Epilogue-folding gate: the row-folded depthwise kernel eliminates
	// two full output sweeps from an op with near-zero arithmetic
	// intensity, so it must not lose to the sweep version beyond timer
	// noise (5%). The dense-conv fold is compute-dominated — its sweep
	// saving is relatively tiny — so it is recorded but only sanity-gated
	// against a gross (25%) slowdown that would indicate the fold broke
	// the kernel's loop structure.
	if dwFold.NsPerOp > dwSweep.NsPerOp+dwSweep.NsPerOp/20 {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: folded depthwise epilogue %d ns/op is above two-sweep %d ns/op\n",
			dwFold.NsPerOp, dwSweep.NsPerOp)
		os.Exit(1)
	}
	if convFold.NsPerOp > convSweep.NsPerOp+convSweep.NsPerOp/4 {
		fmt.Fprintf(os.Stderr, "engbench: REGRESSION: folded conv epilogue %d ns/op is far above two-sweep %d ns/op\n",
			convFold.NsPerOp, convSweep.NsPerOp)
		os.Exit(1)
	}

	// Pooled-conv, pre-pack, and batch-fold gates. All three compare
	// timings of the same arithmetic under different memory behavior, so
	// they enforce only on hosts with >= 4 CPUs — the CI floor
	// bench-smoke documents — and are loudly waived below it (ratios
	// still recorded above).
	if rep.NumCPU >= 4 {
		// Pooled scratch must never lose to per-call allocation beyond
		// timer noise (5%): the pool exists to remove allocator traffic,
		// and a slower pool means its free-list lookup has regressed.
		if pooled.NsPerOp > alloc.NsPerOp+alloc.NsPerOp/20 {
			fmt.Fprintf(os.Stderr, "engbench: REGRESSION: pooled GEMM conv %d ns/op is above allocating %d ns/op beyond noise\n",
				pooled.NsPerOp, alloc.NsPerOp)
			os.Exit(1)
		}
		// Session-open pre-packing must pay for itself: the prepacked
		// forward skips per-call weight packing and pins the GEMM
		// lowering, so it must beat the unpacked pooled forward by 15%.
		if spd := ratio(fpool.NsPerOp, prepacked.NsPerOp); spd < 1.15 {
			fmt.Fprintf(os.Stderr, "engbench: REGRESSION: prepacked forward is only %.3fx vs unpacked (gate 1.15x): %d vs %d ns/op\n",
				spd, prepacked.NsPerOp, fpool.NsPerOp)
			os.Exit(1)
		}
		// Batch folding must amortize: 8 frames through one batch-folded
		// InferBatch must beat the same 8 frames one at a time by 30%.
		if spd := ratio(seq8.NsPerOp, batch8.NsPerOp); spd < 1.3 {
			fmt.Fprintf(os.Stderr, "engbench: REGRESSION: batched-8 serving is only %.3fx vs 8 sequential (gate 1.30x): %d vs %d ns/op\n",
				spd, batch8.NsPerOp, seq8.NsPerOp)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "engbench: pooled-conv/prepack/batch-fold gates WAIVED: host has %d CPUs (< 4); ratios recorded, not enforced\n",
			rep.NumCPU)
	}

	// Scaling gate: intra-op parallelism must actually win where it can.
	// At every swept point with 4 <= p <= NumCPU, the pool-sharded GEMM
	// must beat the serial blocked kernel at the same p, and the
	// pooled-parallel forward must beat the p=1 pooled forward (the p=1
	// point executes every kernel serial, so it is the true serial
	// baseline; same-p pooled vs pooled-parallel differ only by
	// wavefront scheduling and sit inside noise on mostly-sequential
	// graphs). Points the host cannot satisfy (p < 4, or p beyond the
	// physical core count) are recorded but not enforced.
	var base1 *scalePoint
	for i := range rep.Scaling {
		if rep.Scaling[i].GoMaxProcs == 1 {
			base1 = &rep.Scaling[i]
		}
	}
	enforced := 0
	for _, sp := range rep.Scaling {
		if sp.GoMaxProcs < 4 || sp.GoMaxProcs > rep.NumCPU {
			continue
		}
		enforced++
		blk, par := findResult(sp.Results, "matmul/blocked"), findResult(sp.Results, "matmul/parallel")
		if blk != nil && par != nil && par.NsPerOp >= blk.NsPerOp {
			fmt.Fprintf(os.Stderr, "engbench: REGRESSION: parallel GEMM %d ns/op is not below blocked %d ns/op at GOMAXPROCS=%d\n",
				par.NsPerOp, blk.NsPerOp, sp.GoMaxProcs)
			os.Exit(1)
		}
		if base1 != nil {
			sser := findResult(base1.Results, "forward/pooled")
			spar := findResult(sp.Results, "forward/pooled-parallel")
			if sser != nil && spar != nil && spar.NsPerOp >= sser.NsPerOp {
				fmt.Fprintf(os.Stderr, "engbench: REGRESSION: parallel forward %d ns/op at GOMAXPROCS=%d is not below serial forward %d ns/op at GOMAXPROCS=1\n",
					spar.NsPerOp, sp.GoMaxProcs, sser.NsPerOp)
				os.Exit(1)
			}
		}
	}
	if len(procs) > 0 && enforced == 0 {
		fmt.Fprintf(os.Stderr, "engbench: scaling gate WAIVED: host has %d CPUs; no swept point satisfies 4 <= p <= NumCPU (curve recorded, not enforced)\n",
			rep.NumCPU)
	}
}

// findResult returns the named result from a sweep point, nil if absent.
func findResult(rs []result, name string) *result {
	for i := range rs {
		if rs[i].Name == name {
			return &rs[i]
		}
	}
	return nil
}

// ratio returns before/after as a speedup factor (guarding div-by-zero).
func ratio(before, after int64) float64 {
	if after == 0 {
		return 0
	}
	return float64(before) / float64(after)
}

// reduction returns the fractional drop from before to after allocs.
func reduction(before, after int64) float64 {
	if before == 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}
