# edgebench-go — stdlib-only Go reproduction of the IISWC'19 edgeBench study.

GO ?= go

.PHONY: all build vet test lint analyze race check cover bench bench-smoke opt-equiv reproduce sweep examples serve-smoke pipe-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Repo-specific static analysis (cmd/edgelint): the registered analyzer
# suite — float equality, Graph.Nodes mutation, panic in error-returning
# functions, missing doc comments, plus the concurrency family
# (atomic-mixed, mutex-infer, go-lifetime, wg-add, unchecked-error,
# into-alias). `go run ./cmd/edgelint -rules` lists everything.
lint:
	$(GO) run ./cmd/edgelint ./...

# The full static-analysis gate: go vet, every edgelint rule, and the
# graph-IR dataflow verifiers over the whole model zoo (buffer-plan
# aliasing proof + quant-domain discipline). Nonzero on any finding.
analyze: vet lint
	$(GO) run ./cmd/modelzoo -analyze

# Graph-compiler gate: the O2 pass pipeline (constant folding, identity
# elimination, pattern fusion, dead-node removal) must survive every
# verify gate on all zoo models, and the O2 graphs must be bitwise
# equivalent to O0 on the materialized models under the compute budget.
opt-equiv:
	$(GO) run ./cmd/modelzoo -opt O2
	$(GO) test -count=1 -run 'TestZooOpt|TestOptimize' ./internal/model/ ./internal/opt/

# Full test suite under the race detector. This is the scheduler's
# correctness gate: the engine-equivalence tests (internal/graph,
# internal/model, internal/serving, internal/core) run the parallel and
# pooled executors against sequential reference outputs with -race on.
race:
	$(GO) test -race ./...

# Live-serving smoke: boots the real HTTP inference server on a free
# port, auto-picks an attack rate well inside both the live and the
# simulated envelope, fires a burst load through the built-in generator,
# scrapes /metrics, and exits nonzero unless the run was clean (zero
# errors, zero shed, micro-batching demonstrably active). Runs twice:
# the FP32 path under the O2 graph compiler (live pattern-fused serving)
# and the real-int8 path (-quantize int8), which must also prove int8
# kernel dispatches in /metrics.
serve-smoke:
	$(GO) run ./cmd/edgeserve -model CifarNet -framework TFLite -device EdgeTPU \
		-listen 127.0.0.1:0 -replicas 2 -attack auto,2s,4 -smoke -opt O2
	$(GO) run ./cmd/edgeserve -model CifarNet -framework TFLite -device EdgeTPU \
		-listen 127.0.0.1:0 -replicas 2 -attack auto,2s,4 -smoke -quantize int8

# Distributed pipelined-serving smoke: partitions CifarNet into three
# pipeline stages (the paper's RPi3 / Nano / TX2 testbed under the
# ethernet link model), spawns three local stage-worker processes,
# verifies the distributed pipeline is bit-identical to the
# single-process executor, then fires a burst load through the front
# server and asserts the pipeline out-throughputs one serving replica
# (the throughput gate enforces on >= 4-CPU hosts and is loudly waived
# below that, matching the engbench scaling-gate policy).
pipe-smoke:
	$(GO) run ./cmd/edgepipe run -model CifarNet -framework TFLite \
		-devices RPi3,JetsonNano,JetsonTX2 -link ethernet \
		-check 4 -attack auto,2s,4 -smoke

# The CI gate: everything that must be clean before a merge.
check: build analyze opt-equiv race serve-smoke pipe-smoke

cover:
	$(GO) test -cover ./...

# Engine performance snapshot (writes BENCH_engine.json), then the
# package micro-benchmarks.
bench:
	$(GO) run ./cmd/engbench
	$(GO) test -bench=. -benchmem ./...

# One-iteration engbench run: exercises every benchmark path and every
# regression gate (int8 vs FP32, the O2 fused forward vs unfused, and —
# on hosts with >= 4 CPUs, loudly WAIVED below — the perf-floor gates:
# pooled conv2d/gemm must not lose to the allocating path, the
# pre-packed forward must beat the unpacked forward by >= 1.15x, a
# batch-8 InferBatch must beat 8 sequential Infers by >= 1.3x, and the
# intra-op scaling gate: parallel GEMM/forward must beat serial at the
# swept GOMAXPROCS points). Writes a throwaway JSON so the committed
# BENCH_engine.json is never clobbered by a smoke run.
bench-smoke:
	$(GO) run ./cmd/engbench -benchtime 1x -o BENCH_smoke.json

# Regenerate every paper table/figure plus the extensions.
reproduce:
	$(GO) run ./cmd/edgebench -all

# Full-factorial characterization CSV (the open-source-harness artifact).
sweep:
	$(GO) run ./cmd/edgesweep -extensions -o sweep.csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dronepatrol
	$(GO) run ./examples/smartcamera
	$(GO) run ./examples/fleetplanner
	$(GO) run ./examples/trainlab

# The paper-vs-model calibration audit.
audit:
	$(GO) run ./cmd/calibrate

clean:
	rm -f sweep.csv test_output.txt bench_output.txt BENCH_smoke.json
