module edgebench

go 1.22
