// Package edgebench's integration tests drive the whole stack end to
// end across package boundaries: model zoo -> framework lowering ->
// numeric execution -> interchange -> partitioning -> characterization.
package edgebench

import (
	"math"
	"testing"

	"edgebench/internal/autodiff"
	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/exchange"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/partition"
	"edgebench/internal/trace"
)

// TestCrossFrameworkNumericAgreement lowers the same trained model
// through every framework pipeline and verifies the *numeric* outputs
// agree up to the precision each pipeline trades away — the ground truth
// beneath the paper's "we ensure all implementations are identical" (§II).
func TestCrossFrameworkNumericAgreement(t *testing.T) {
	spec := model.MustGet("CifarNet")
	master := spec.Build(nn.Options{Materialize: true, Seed: 31})
	in, err := trace.Generator{Seed: 9}.Input(spec.InputShape)
	if err != nil {
		t.Fatal(err)
	}
	var exec graph.Executor
	ref, err := exec.Run(master, in.Clone())
	if err != nil {
		t.Fatal(err)
	}

	dev := device.MustGet("RPi3")
	for _, fwName := range []string{"TensorFlow", "TFLite", "Caffe", "PyTorch", "DarkNet"} {
		fw := framework.MustGet(fwName)
		lowered := fw.Lower(master, dev)
		got, err := exec.Run(lowered, in.Clone())
		if err != nil {
			t.Fatalf("%s: %v", fwName, err)
		}
		refArg, gotArg := argmax32(ref.Data), argmax32(got.Data)
		if refArg != gotArg {
			t.Errorf("%s: top-1 flipped (%d vs %d)", fwName, gotArg, refArg)
		}
		tol := 1e-5
		if fw.Opts.Quantization {
			tol = 0.05 // TFLite deploys int8
		} else if fw.Opts.HalfPrecision {
			tol = 1e-2
		}
		for i := range ref.Data {
			if d := math.Abs(float64(ref.Data[i] - got.Data[i])); d > tol {
				t.Errorf("%s: output %d off by %v (> %v)", fwName, i, d, tol)
				break
			}
		}
	}
}

// TestTrainExportPartitionDeploy is the grand tour: train a model,
// round-trip it through the interchange format, split it across two
// devices, and verify the partition still computes the trained function.
func TestTrainExportPartitionDeploy(t *testing.T) {
	// Train.
	b := nn.NewBuilder("tour", nn.Options{Materialize: true, Seed: 41}, 1, 8, 8)
	b.Conv2D("conv", 4, 3, 2, 1, true)
	b.ReLU("relu")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 2, true)
	b.Softmax("prob")
	g := b.Build()

	var examples []autodiff.Example
	for i := 0; i < 30; i++ {
		in, err := trace.Generator{Seed: int64(i)}.Input([]int{1, 8, 8})
		if err != nil {
			t.Fatal(err)
		}
		label := i % 2
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				if (label == 0) == (y < 4) {
					in.Set(in.At(0, y, x)+1, 0, y, x)
				}
			}
		}
		examples = append(examples, autodiff.Example{Input: in, Label: label})
	}
	opt := autodiff.NewSGD(0.05, 0.9)
	var acc float64
	var err error
	for e := 0; e < 12; e++ {
		if _, acc, err = autodiff.TrainEpoch(g, opt, examples); err != nil {
			t.Fatal(err)
		}
	}
	if acc < 0.9 {
		t.Fatalf("training accuracy %.2f", acc)
	}

	// Export / import with weights.
	blob, err := exchange.Export(g, exchange.Options{IncludeWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := exchange.Import(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Partition at every cut and verify numeric equality with the
	// trained model.
	var exec graph.Executor
	sample := examples[0].Input
	want, err := exec.Run(back, sample.Clone())
	if err != nil {
		t.Fatal(err)
	}
	cuts := partition.CutPoints(back)
	if len(cuts) == 0 {
		t.Fatal("no cut points in a chain model")
	}
	for _, cut := range cuts {
		head, tail, err := partition.Split(back, cut)
		if err != nil {
			t.Fatal(err)
		}
		partition.CopyParams(back, head, tail)
		mid, err := exec.Run(head, sample.Clone())
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Run(tail, mid)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("cut %s changes the trained function", cut.After.Name)
			}
		}
	}

	// And the characterization engine prices the deployed graph.
	s, err := core.NewFromGraph(back, "TFLite", "RPi3")
	if err != nil {
		t.Fatal(err)
	}
	if ts := s.InferenceSeconds(); ts <= 0 || ts > 1 {
		t.Fatalf("deployed latency %v implausible", ts)
	}
}

// TestEveryTableIModelLowersEverywhereLegal lowers all 16 models through
// every (framework, device) pair the rules allow and checks the result
// validates — a broad structural sweep.
func TestEveryTableIModelLowersEverywhereLegal(t *testing.T) {
	count := 0
	for _, spec := range model.All() {
		g := spec.Build(nn.Options{})
		for _, dev := range device.All() {
			fws, err := framework.FrameworksFor(dev.Name)
			if err != nil {
				t.Fatal(err)
			}
			for _, fw := range fws {
				lowered := fw.Lower(g, dev)
				if err := lowered.Validate(); err != nil {
					t.Errorf("%s via %s on %s: %v", spec.Name, fw.Name, dev.Name, err)
				}
				count++
			}
		}
	}
	if count < 500 {
		t.Fatalf("sweep covered only %d combinations", count)
	}
}

func argmax32(xs []float32) int {
	best, arg := float32(-math.MaxFloat32), 0
	for i, v := range xs {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}
