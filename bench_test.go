// Package edgebench's top-level benchmarks regenerate every table and
// figure of the paper (deliverable d): one testing.B benchmark per
// artifact, each reporting the artifact's headline quantity as a custom
// metric so `go test -bench=. -benchmem` prints the reproduction
// alongside Go's timing. Detailed paper-vs-measured numbers live in
// EXPERIMENTS.md and come from `go run ./cmd/edgebench -all`.
package edgebench

import (
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/harness"
	"edgebench/internal/model"
	"edgebench/internal/paperdata"
	"edgebench/internal/power"
	"edgebench/internal/stats"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTableV(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTableVI(b *testing.B)  { benchExperiment(b, "table6") }

func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure2 regenerates the best-framework-per-device figure and
// reports the modeled RPi/EdgeTPU spread for MobileNet-v2.
func BenchmarkFigure2(b *testing.B) {
	benchExperiment(b, "fig2")
	rpi, _, err := harness.BestOnDevice("MobileNet-v2", "RPi3")
	if err != nil {
		b.Fatal(err)
	}
	tpu, _, err := harness.BestOnDevice("MobileNet-v2", "EdgeTPU")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rpi/tpu, "rpi/edgetpu-x")
}

func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 reports the TensorRT-over-PyTorch average speedup
// (paper: 4.1x).
func BenchmarkFigure7(b *testing.B) {
	benchExperiment(b, "fig7")
	var sp []float64
	for m := range paperdata.Fig7Nano {
		pt := mustSeconds(b, m, "PyTorch", "JetsonNano")
		rt := mustSeconds(b, m, "TensorRT", "JetsonNano")
		sp = append(sp, pt/rt)
	}
	b.ReportMetric(stats.Mean(sp), "trt-speedup-x")
}

// BenchmarkFigure8 reports the TFLite speedups (paper: 1.58x over TF,
// 4.53x over PyTorch).
func BenchmarkFigure8(b *testing.B) {
	benchExperiment(b, "fig8")
	var spTF, spPT []float64
	for m := range paperdata.Fig8RPi {
		tfl := mustSeconds(b, m, "TFLite", "RPi3")
		spTF = append(spTF, mustSeconds(b, m, "TensorFlow", "RPi3")/tfl)
		spPT = append(spPT, mustSeconds(b, m, "PyTorch", "RPi3")/tfl)
	}
	b.ReportMetric(stats.Mean(spTF), "tflite/tf-x")
	b.ReportMetric(stats.Mean(spPT), "tflite/pytorch-x")
}

func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFigure10 reports the HPC-over-TX2 geomean (paper: ~3x).
func BenchmarkFigure10(b *testing.B) {
	benchExperiment(b, "fig10")
	var sp []float64
	for _, m := range []string{"ResNet-50", "VGG16", "Inception-v4", "C3D"} {
		tx2 := mustSeconds(b, m, "PyTorch", "JetsonTX2")
		for _, d := range []string{"Xeon", "GTXTitanX", "TitanXp", "RTX2080"} {
			sp = append(sp, tx2/mustSeconds(b, m, "PyTorch", d))
		}
	}
	b.ReportMetric(stats.GeoMean(sp), "hpc-geomean-x")
}

// BenchmarkFigure11 reports the EdgeTPU MobileNet-v2 energy (paper:
// ~11 mJ).
func BenchmarkFigure11(b *testing.B) {
	benchExperiment(b, "fig11")
	s, err := core.New("MobileNet-v2", "TFLite", "EdgeTPU")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(power.EnergyPerInferenceJ(s)*1e3, "edgetpu-mJ")
}

func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFigure13 reports the Docker slowdown (paper: within 5%).
func BenchmarkFigure13(b *testing.B) {
	benchExperiment(b, "fig13")
	s, err := core.New("ResNet-50", "TensorFlow", "RPi3")
	if err != nil {
		b.Fatal(err)
	}
	bare := s.InferenceSeconds()
	s.Docker = true
	b.ReportMetric(100*(s.InferenceSeconds()/bare-1), "docker-%")
}

func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkSessionLatencyModel measures the cost of one full analytic
// evaluation (lowering excluded).
func BenchmarkSessionLatencyModel(b *testing.B) {
	s, err := core.New("ResNet-50", "TensorRT", "JetsonNano")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.InferenceSeconds()
	}
}

// BenchmarkSessionConstruction measures session setup including the
// framework lowering pipeline over a mid-sized model.
func BenchmarkSessionConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.New("ResNet-50", "TensorRT", "JetsonNano"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelZooBuild measures structural graph construction for the
// whole Table I zoo.
func BenchmarkModelZooBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range model.All() {
			_ = s.GFLOPs()
		}
	}
}

func mustSeconds(b *testing.B, m, fw, dev string) float64 {
	b.Helper()
	s, err := core.New(m, fw, dev)
	if err != nil {
		b.Fatal(err)
	}
	return s.InferenceSeconds()
}
